"""Unit tests for repro.core.theorems (Theorems 2-7, eq. 29)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core import theorems as th
from repro.core.arithmetic import access_set
from repro.core.theorems import PairGeometry


class TestPairGeometry:
    def test_reduction(self):
        g = PairGeometry.of(12, 3, 4, 6)
        assert g.f == 2
        assert (g.m_red, g.d1_red, g.d2_red) == (6, 2, 3)
        assert (g.r1, g.r2) == (3, 2)

    def test_zero_strides(self):
        g = PairGeometry.of(12, 3, 0, 0)
        assert g.f == 12 and g.m_red == 1

    def test_no_self_conflicts_flag(self):
        assert PairGeometry.of(12, 3, 1, 7).no_self_conflicts
        assert not PairGeometry.of(16, 4, 8, 1).no_self_conflicts

    def test_require_canonical(self):
        PairGeometry.of(12, 3, 1, 5).require_canonical()  # fine: 1 | 12
        with pytest.raises(ValueError):
            PairGeometry.of(12, 3, 5, 7).require_canonical()  # 5 ∤ 12
        with pytest.raises(ValueError):
            PairGeometry.of(12, 3, 2, 1).require_canonical()  # d2 < d1

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            PairGeometry.of(0, 3, 1, 2)
        with pytest.raises(ValueError):
            PairGeometry.of(12, 0, 1, 2)


class TestTheorem2Disjoint:
    def test_possible_iff_gcd3_gt_1(self):
        assert th.disjoint_sets_possible(12, 2, 4)
        assert th.disjoint_sets_possible(12, 3, 6)
        assert not th.disjoint_sets_possible(12, 1, 7)
        assert not th.disjoint_sets_possible(13, 2, 4)  # prime m

    def test_offsets_actually_disjoint(self):
        m = 12
        for d1, d2 in [(2, 4), (3, 6), (2, 2), (4, 8), (6, 6)]:
            offs = th.disjoint_start_offsets(m, d1, d2)
            assert offs, f"expected offsets for ({d1},{d2})"
            for off in offs:
                z1 = access_set(m, d1, 0)
                z2 = access_set(m, d2, off)
                assert not (z1 & z2), (d1, d2, off)

    def test_consecutive_start_banks_work(self):
        # The proof's construction: b2 = b1 + 1 when f > 1.
        assert 1 in th.disjoint_start_offsets(12, 2, 4)

    def test_no_offsets_when_impossible(self):
        assert th.disjoint_start_offsets(12, 1, 7) == []

    def test_zero_strides(self):
        # Both streams pinned to one bank: disjoint iff different banks.
        assert th.disjoint_sets_possible(12, 0, 0)
        offs = th.disjoint_start_offsets(12, 0, 0)
        assert 0 not in offs and len(offs) == 11

    def test_m_one_degenerate(self):
        assert not th.disjoint_sets_possible(1, 0, 0)


class TestTheorem3ConflictFree:
    def test_fig2_case(self):
        # m=12, n_c=3, d=(1,7): gcd(12, 6) = 6 >= 2*3.
        assert th.conflict_free_possible(12, 3, 1, 7)

    def test_fig3_case_not_cf(self):
        # m=13, n_c=6, d=(1,6): gcd(13,5)=1 < 12.
        assert not th.conflict_free_possible(13, 6, 1, 6)

    def test_equal_strides_gcd_zero_convention(self):
        # d1 = d2: drift 0, gcd(m', 0) = m' = r; CF iff r >= 2 n_c.
        assert th.conflict_free_possible(12, 3, 1, 1)       # r=12 >= 6
        assert not th.conflict_free_possible(12, 3, 4, 4)   # r=3 < 6
        assert th.conflict_free_possible(16, 4, 2, 2)       # r=8 >= 8

    def test_f_reduction(self):
        # (d1,d2)=(2,14) on m=24, n_c=3: f=2 → (1,7) on 12, gcd=6 ≥ 6.
        assert th.conflict_free_possible(24, 3, 2, 14)

    def test_start_offset_is_nc_d1(self):
        assert th.conflict_free_start_offset(12, 3, 1, 7) == 3
        assert th.conflict_free_start_offset(13, 6, 1, 6) is None

    def test_synchronizes_alias(self):
        assert th.synchronizes(12, 3, 1, 7)
        assert not th.synchronizes(13, 6, 1, 6)

    def test_symmetry_in_pair_order(self):
        # |d2-d1| makes the condition order-independent.
        assert th.conflict_free_possible(12, 3, 7, 1)


class TestTheorem4Barrier:
    def test_fig3_barrier_possible(self):
        # m=13, n_c=6, d=(1,6): (6-1) mod 13 = 5 ∈ [1,5].
        assert th.barrier_possible(13, 6, 1, 6)

    def test_fig5_barrier_possible(self):
        # m=13, n_c=4, d=(1,3): (3-1) mod 13 = 2 ∈ [1,3].
        assert th.barrier_possible(13, 4, 1, 3)

    def test_drift_too_large(self):
        # m=13, n_c=4, d=(1,6): c = 5 >= n_c ⇒ no barrier.
        assert not th.barrier_possible(13, 4, 1, 6)

    def test_requires_r1_at_least_2nc(self):
        # m=12, d1=2 ⇒ r1=6 < 2*4: preconditions fail.
        assert not th.barrier_possible(12, 4, 2, 3)

    def test_requires_canonical_form(self):
        with pytest.raises(ValueError):
            th.barrier_possible(13, 4, 3, 1)  # d2 < d1
        with pytest.raises(ValueError):
            th.barrier_possible(12, 3, 5, 7)  # d1 ∤ m

    def test_drift_zero_mod_mpp_not_barrier(self):
        # m=12, n_c=2, d=(3,7): f=1, m''=12/3=4, c=(7-3) mod 4 = 0 —
        # the streams' meeting drift never lands in the busy shadow.
        assert not th.barrier_possible(12, 2, 3, 7)


class TestTheorem5DoubleConflict:
    def test_fig5_no_double(self):
        # (n_c-1)(d2+d1) = 3*4 = 12 < 13.
        assert th.double_conflict_impossible(13, 4, 1, 3)

    def test_fig3_double_possible(self):
        # (6-1)*(6+1) = 35 >= 13: double conflicts can occur (Fig. 4!).
        assert not th.double_conflict_impossible(13, 6, 1, 6)


class TestTheorems6And7Uniqueness:
    def test_fig5_not_unique(self):
        # m=13, n_c=4, d=(1,3): (2*4-1)*3 = 21 > 13 — Theorem 6 fails,
        # and Fig. 6 indeed shows an inverted barrier for b2 = 1.
        assert not th.unique_barrier_by_modulus(13, 4, 1, 3)

    def test_theorem6_large_m(self):
        # Scale the Fig. 5 pair up: m=26, n_c=4, d=(1,3): 21 <= 26 and
        # barrier still possible ((3-1) mod 26 = 2 < 4).
        assert th.barrier_possible(26, 4, 1, 3)
        assert th.unique_barrier_by_modulus(26, 4, 1, 3)

    def test_unique_barrier_combined(self):
        assert th.unique_barrier(26, 4, 1, 3)
        assert not th.unique_barrier(13, 4, 1, 6)  # no barrier at all

    def test_theorem7_small_m_path(self):
        # Any pair where T4+T5 hold but T6 fails exercises eq. (25).
        # m=13, n_c=4, d=(1,3): k = ceil(13/3)*1 = 5 < 8;
        # lhs = 5*3 mod 13 = 2; rhs = (5-4)*1 = 1 ⇒ 2 < 1 false ⇒ not unique.
        assert not th.unique_barrier_small_m(13, 4, 1, 3)

    def test_theorem7_priority_equality_case(self):
        # The eq. (28) tie-break can only ever *add* uniqueness.
        for m, n_c, d1, d2 in [(13, 4, 1, 3), (13, 6, 1, 6), (26, 4, 1, 3)]:
            base = th.unique_barrier(m, n_c, d1, d2, stream1_priority=False)
            with_prio = th.unique_barrier(m, n_c, d1, d2, stream1_priority=True)
            assert base <= with_prio


class TestEq29BarrierBandwidth:
    def test_values(self):
        assert th.barrier_bandwidth(1, 6) == Fraction(7, 6)
        assert th.barrier_bandwidth(1, 3) == Fraction(4, 3)
        assert th.barrier_bandwidth(2, 3) == Fraction(5, 3)

    def test_strictly_below_two(self):
        for d1 in range(1, 8):
            for d2 in range(d1 + 1, 9):
                assert 1 < th.barrier_bandwidth(d1, d2) < 2

    def test_validation(self):
        with pytest.raises(ValueError):
            th.barrier_bandwidth(1, 0)
        with pytest.raises(ValueError):
            th.barrier_bandwidth(-1, 3)


class TestBarrierCycle:
    def test_cycle_counts(self):
        clocks, g1, g2 = th.barrier_cycle(13, 1, 6)
        assert (clocks, g1, g2) == (6, 6, 1)
        assert Fraction(g1 + g2, clocks) == th.barrier_bandwidth(1, 6)

    def test_reduced_by_f(self):
        clocks, g1, g2 = th.barrier_cycle(26, 2, 6)
        assert (clocks, g1, g2) == (3, 3, 1)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            th.barrier_cycle(12, 0, 12)


class TestBarrierStartOffset:
    def test_offset_zero_when_possible(self):
        assert th.barrier_start_offset(13, 6, 1, 6) == 0
        assert th.barrier_start_offset(13, 4, 1, 3) == 0

    def test_none_when_impossible(self):
        assert th.barrier_start_offset(13, 4, 1, 6) is None

    def test_offset_actually_barriers_stream_2(self):
        """Exhaustive check of the construction across shapes."""
        from repro.analysis.sweep import canonical_pairs
        from repro.core.single import predict_single
        from repro.memory.config import MemoryConfig
        from repro.sim.pairs import ObservedRegime, simulate_pair

        checked = 0
        for m, n_c in [(13, 4), (16, 2), (26, 4)]:
            cfg = MemoryConfig(banks=m, bank_cycle=n_c)
            for d1, d2 in canonical_pairs(m):
                if d1 >= d2:
                    continue
                r1 = predict_single(m, d1, n_c)
                r2 = predict_single(m, d2, n_c)
                if not (
                    r1.return_number >= 2 * n_c
                    and r2.return_number > n_c
                ):
                    continue
                off = th.barrier_start_offset(m, n_c, d1, d2)
                if off is None:
                    continue
                pr = simulate_pair(cfg, d1, d2, b2=off, priority="fixed")
                assert pr.regime is ObservedRegime.BARRIER_ON_2, (
                    m, n_c, d1, d2,
                )
                checked += 1
        assert checked >= 10
