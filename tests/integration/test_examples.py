"""Integration: every example script must run cleanly end to end."""

from __future__ import annotations

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3  # the deliverable floor
