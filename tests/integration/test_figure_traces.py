"""Regression locks on the rendered trace figures.

These pin the exact character patterns of the key figure motifs so
renderer or engine changes that silently alter the diagrams fail loudly.
"""

from __future__ import annotations

import pytest

from repro.core.stream import AccessStream
from repro.sim.engine import simulate_streams
from repro.viz.ascii_trace import trace_grid


def grid_for(config, specs, cpus, cycles=40, priority="fixed"):
    streams = [
        AccessStream(b, d, label=str(i + 1))
        for i, (b, d) in enumerate(specs)
    ]
    res = simulate_streams(
        config, streams, cpus=cpus, cycles=cycles, trace=True,
        priority=priority,
    )
    return trace_grid(res.trace, config, stop=cycles - 4)


class TestFig2Pattern:
    def test_alternating_blocks(self, fig2):
        grid = grid_for(fig2, [(0, 1), (3, 7)], [0, 1])
        # bank 0: stream 1 grant at clock 0, stream 2 lands n_c later.
        assert "".join(grid[0][:12]) == "111222......"
        # bank 3 is stream 2's start bank; stream 1 arrives at clock 3,
        # exactly when the bank recovers (the eq. 10 construction).
        assert "".join(grid[3][:12]) == "222111......"
        # and no conflict markers anywhere
        chars = {c for row in grid for c in row}
        assert chars <= {"1", "2", "."}


class TestFig3Pattern:
    def test_barrier_motif(self, fig3):
        grid = grid_for(fig3, [(0, 1), (0, 6)], [0, 1])
        assert "".join(grid[6][6:19]) == "1<<<<<222222."

    def test_stream1_unperturbed(self, fig3):
        # the barrier stream marches one bank per clock forever
        grid = grid_for(fig3, [(0, 1), (0, 6)], [0, 1])
        for j in range(1, 6):
            assert grid[j][j] == "1", j


class TestFig5Pattern:
    def test_barrier_on_2(self, fig5):
        grid = grid_for(fig5, [(0, 1), (7, 3)], [0, 1])
        # stream 1 unhindered on the first diagonal
        for j in range(0, 5):
            assert grid[j][j] == "1"
        # somewhere a '<' appears (stream 2 delayed), never a '>'
        chars = {c for row in grid for c in row}
        assert "<" in chars and ">" not in chars


class TestFig6Pattern:
    def test_inverted_marker(self, fig5):
        grid = grid_for(fig5, [(0, 1), (1, 3)], [0, 1])
        chars = {c for row in grid for c in row}
        # stream 1 is the delayed one: '>' markers appear
        assert ">" in chars


class TestFig7Pattern:
    def test_no_conflicts_at_offset_3(self, fig7):
        grid = grid_for(fig7, [(0, 1), (3, 1)], [0, 0], cycles=30)
        chars = {c for row in grid for c in row}
        assert chars <= {"1", "2", "."}


class TestFig8Pattern:
    def test_linked_conflict_markers(self, fig8):
        grid = grid_for(
            fig8, [(0, 1), (1, 1)], [0, 0], cycles=40, priority="fixed"
        )
        chars = {c for row in grid for c in row}
        # the linked conflict alternates section conflicts (delaying
        # stream 2, "*") with bank conflicts delaying stream *1* (">"):
        # exactly the paper's description "the first one encounters two
        # bank conflicts".
        assert "*" in chars  # section conflicts
        assert ">" in chars  # bank-conflict delays of stream 1

    def test_cyclic_clears_markers_eventually(self, fig8):
        streams = [
            AccessStream(0, 1, label="1"),
            AccessStream(1, 1, label="2"),
        ]
        res = simulate_streams(
            fig8, streams, cpus=[0, 0], cycles=60, trace=True,
            priority="cyclic",
        )
        late = trace_grid(res.trace, fig8, start=30, stop=56)
        chars = {c for row in late for c in row}
        assert chars <= {"1", "2", "."}  # steady state is clean


class TestFig9Pattern:
    def test_consecutive_sections_clean(self, fig8):
        cfg = fig8.with_sections(3, "consecutive")
        grid = grid_for(
            cfg, [(0, 1), (1, 1)], [0, 0], cycles=40, priority="fixed"
        )
        late_chars = {c for row in grid for c in row[10:]}
        assert "*" not in late_chars
