"""Integration tests: every trace figure of the paper, end to end.

Each test sets up the exact configuration of a figure, runs the
cycle-accurate simulator, and checks the quantitative claims the figure
illustrates (steady bandwidth, regime, who delays whom).
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core import classify_pair, theorems
from repro.core.classify import PairRegime
from repro.sim.pairs import ObservedRegime, simulate_pair


class TestFig2ConflictFree:
    """m=12, n_c=3, d=(1,7): conflict-free, b_eff = 2."""

    def test_theory(self, fig2):
        assert theorems.conflict_free_possible(12, 3, 1, 7)
        assert classify_pair(12, 3, 1, 7).regime is PairRegime.CONFLICT_FREE

    def test_simulation_from_every_start(self, fig2):
        # Synchronization: all 12 relative starts converge to b_eff = 2.
        for b2 in range(12):
            pr = simulate_pair(fig2, 1, 7, b2=b2)
            assert pr.bandwidth == 2, b2
            assert pr.regime is ObservedRegime.CONFLICT_FREE


class TestFig3Barrier:
    """m=13, n_c=6, d=(1,6): barrier-situation, b_eff = 7/6."""

    def test_theory(self, fig3):
        assert theorems.barrier_possible(13, 6, 1, 6)
        # Theorem 5's guard fails: double conflicts ARE possible here.
        assert not theorems.double_conflict_impossible(13, 6, 1, 6)
        assert theorems.barrier_bandwidth(1, 6) == Fraction(7, 6)

    def test_simulated_barrier_at_paper_start(self, fig3):
        pr = simulate_pair(fig3, 1, 6, b2=0)
        assert pr.bandwidth == Fraction(7, 6)
        assert pr.regime is ObservedRegime.BARRIER_ON_2

    def test_barrier_cycle_structure(self, fig3):
        # One barrier period: 6 clocks, stream 1 gets 6 grants, stream 2
        # gets 1 (paper, above eq. 29).
        pr = simulate_pair(fig3, 1, 6, b2=0)
        assert pr.period % 6 == 0
        scale = pr.period // 6
        assert pr.grants == (6 * scale, 1 * scale)


class TestFig4DoubleConflict:
    """Same memory, b2 = 1: the barrier is NOT reached — mutual delays."""

    def test_simulated(self, fig3):
        pr = simulate_pair(fig3, 1, 6, b2=1)
        assert pr.regime is ObservedRegime.MUTUAL
        # both streams lose grants in the cycle
        assert pr.grants[0] < pr.period
        assert pr.grants[1] < pr.period

    def test_start_dependence_documented_by_classifier(self):
        c = classify_pair(13, 6, 1, 6)
        assert c.predicted_bandwidth is None
        assert c.bandwidth_lower <= Fraction(16, 17)


class TestFig5And6BarrierOrientation:
    """m=13, n_c=4, d=(1,3): barrier for b2=7, inverted for b2=1."""

    def test_theory(self):
        assert theorems.barrier_possible(13, 4, 1, 3)
        assert theorems.double_conflict_impossible(13, 4, 1, 3)
        # Not unique: Theorem 6's modulus bound fails...
        assert not theorems.unique_barrier_by_modulus(13, 4, 1, 3)
        # ...and Theorem 7's eq. (25) also rejects it.
        assert not theorems.unique_barrier_small_m(13, 4, 1, 3)

    def test_fig5_barrier(self, fig5):
        pr = simulate_pair(fig5, 1, 3, b2=7)
        assert pr.bandwidth == Fraction(4, 3)
        assert pr.regime is ObservedRegime.BARRIER_ON_2

    def test_fig6_inverted_barrier(self, fig5):
        pr = simulate_pair(fig5, 1, 3, b2=1)
        assert pr.regime is ObservedRegime.BARRIER_ON_1

    def test_no_double_conflicts_any_start(self, fig5):
        # Theorem 5 holds, so no start may produce mutual delays.
        for b2 in range(13):
            pr = simulate_pair(fig5, 1, 3, b2=b2)
            assert pr.regime is not ObservedRegime.MUTUAL, b2


class TestUniqueBarrierScaledUp:
    """m=26, n_c=4, d=(1,3): Theorem 6 applies — barrier from EVERY start."""

    def test_theory(self):
        assert theorems.unique_barrier_by_modulus(26, 4, 1, 3)

    def test_every_start_barriers_stream2(self):
        from repro.memory.config import MemoryConfig

        cfg = MemoryConfig(banks=26, bank_cycle=4)
        for b2 in range(26):
            pr = simulate_pair(cfg, 1, 3, b2=b2)
            assert pr.bandwidth == Fraction(4, 3), b2
            assert pr.regime is ObservedRegime.BARRIER_ON_2, b2


class TestFig7SectionedConflictFree:
    """m=12, s=2, n_c=2, d=(1,1), offset (n_c+1)d1=3: conflict free."""

    def test_theory(self):
        from repro.core import sections as sec

        # Theorem 9's direct path fails (2 | n_c*d1 = 2)...
        assert not sec.path_conflict_free(12, 2, 2, 1, 1)
        # ...but eq. (32) rescues it with the 3-offset.
        assert sec.sections_conflict_free_start_offset(12, 2, 2, 1, 1) == 3

    def test_simulated(self, fig7):
        pr = simulate_pair(fig7, 1, 1, b2=3, same_cpu=True)
        assert pr.bandwidth == 2
        assert pr.regime is ObservedRegime.CONFLICT_FREE

    def test_nc_offset_fails(self, fig7):
        # The n_c*d1 = 2 offset collides on the paths: b_eff < 2.
        pr = simulate_pair(fig7, 1, 1, b2=2, same_cpu=True)
        assert pr.bandwidth < 2


class TestFig8LinkedConflict:
    """m=12, s=3, n_c=3, d=(1,1), b=(0,1): fixed priority locks at 3/2,
    cyclic priority resolves to 2."""

    def test_fixed_priority_locks(self, fig8):
        pr = simulate_pair(fig8, 1, 1, b2=1, same_cpu=True, priority="fixed")
        assert pr.bandwidth == Fraction(3, 2)

    def test_cyclic_priority_resolves(self, fig8):
        pr = simulate_pair(fig8, 1, 1, b2=1, same_cpu=True, priority="cyclic")
        assert pr.bandwidth == 2
        assert pr.regime is ObservedRegime.CONFLICT_FREE

    def test_linked_conflict_mixes_conflict_kinds(self, fig8):
        # The defining feature: alternating bank and section conflicts.
        from repro.sim.stats import ConflictKind

        pr = simulate_pair(
            fig8, 1, 1, b2=1, same_cpu=True, priority="fixed", trace=True
        )
        stats = pr.result.stats
        assert stats.stall_cycles(ConflictKind.BANK) > 0
        assert stats.stall_cycles(ConflictKind.SECTION) > 0


class TestFig9ConsecutiveSections:
    """Cheung & Smith's consecutive grouping prevents the linked
    conflict even under fixed priority."""

    def test_simulated(self, fig8):
        cfg = fig8.with_sections(3, "consecutive")
        pr = simulate_pair(cfg, 1, 1, b2=1, same_cpu=True, priority="fixed")
        assert pr.bandwidth == 2
        assert pr.regime is ObservedRegime.CONFLICT_FREE

    def test_mapping_is_the_only_change(self, fig8):
        # identical run with cyclic striping locks (control experiment)
        pr = simulate_pair(fig8, 1, 1, b2=1, same_cpu=True, priority="fixed")
        assert pr.bandwidth == Fraction(3, 2)
