"""Broad cross-validation: every closed form against the simulator.

These are the heavyweight consistency sweeps (DESIGN.md T-A/T-B/T-C as
tests rather than benches) over several memory shapes.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.analysis.sweep import canonical_pairs, pair_sweep
from repro.analysis.validate import (
    validate_conflict_free,
    validate_disjoint,
    validate_single_stream,
    validate_unique_barrier,
)
from repro.core import theorems
from repro.core.single import predict_single


SHAPES = [(8, 2), (8, 4), (12, 3), (13, 4), (16, 4)]


class TestSingleStreamEverywhere:
    @pytest.mark.parametrize("m,n_c", SHAPES)
    def test_no_discrepancies(self, m, n_c):
        assert validate_single_stream(m, n_c) == []


class TestTheorem2Everywhere:
    @pytest.mark.parametrize("m,n_c", [(8, 2), (12, 3), (16, 4)])
    def test_no_discrepancies(self, m, n_c):
        pairs = [
            (d1, d2)
            for d1 in range(1, m)
            for d2 in range(d1, m)
        ]
        assert validate_disjoint(m, n_c, pairs) == []


class TestTheorem3Everywhere:
    @pytest.mark.parametrize("m,n_c", [(8, 2), (12, 3), (13, 4)])
    def test_no_discrepancies(self, m, n_c):
        pairs = [
            (d1, d2)
            for d1 in range(1, m)
            for d2 in range(d1, m)
        ]
        assert validate_conflict_free(m, n_c, pairs) == []


class TestUniqueBarrierEverywhere:
    @pytest.mark.parametrize("m,n_c", [(12, 2), (13, 4), (16, 2), (26, 4)])
    def test_no_discrepancies(self, m, n_c):
        pairs = [
            (d1, d2) for d1, d2 in canonical_pairs(m) if d1 < d2
        ]
        assert validate_unique_barrier(m, n_c, pairs) == []


class TestClassifierBoundsEverywhere:
    @pytest.mark.parametrize("m,n_c", [(8, 2), (12, 3)])
    def test_bounds_bracket_simulation(self, m, n_c):
        for row in pair_sweep(m, n_c):
            assert row.within_bounds, (
                row.d1, row.d2, row.regime, row.best, row.worst,
            )


class TestBarrierBandwidthFormula:
    def test_eq29_against_simulation_where_unique(self):
        """For every unique-barrier pair found on a grid of shapes, the
        simulated bandwidth equals 1 + d1/d2 from every start."""
        from repro.memory.config import MemoryConfig
        from repro.sim.pairs import simulate_pair

        hits = 0
        for m, n_c in [(16, 2), (26, 4), (24, 3)]:
            cfg = MemoryConfig(banks=m, bank_cycle=n_c)
            for d1, d2 in canonical_pairs(m):
                if d1 >= d2:
                    continue
                r1 = predict_single(m, d1, n_c)
                r2 = predict_single(m, d2, n_c)
                if not (r1.return_number >= 2 * n_c and r2.return_number > n_c):
                    continue
                if not theorems.unique_barrier(
                    m, n_c, d1, d2, stream1_priority=True
                ):
                    continue
                hits += 1
                expect = theorems.barrier_bandwidth(d1, d2)
                from repro.core.arithmetic import access_set

                z1 = access_set(m, d1, 0)
                for b2 in range(0, m, max(1, m // 6)):  # sample starts
                    if not (z1 & access_set(m, d2, b2)):
                        continue  # disjoint sets: Theorem 2 territory
                    pr = simulate_pair(cfg, d1, d2, b2=b2, priority="fixed")
                    assert pr.bandwidth == expect, (m, n_c, d1, d2, b2)
        assert hits >= 3  # the sweep actually exercised the formula
