"""Integration tests: the Section IV / Fig. 10 triad experiment.

These check the *shape* claims the paper makes about its measurements —
who wins, by roughly what factor, where the pathologies sit.  Absolute
clock counts are our model's, not the X-MP's.
"""

from __future__ import annotations

import pytest

from repro.machine.xmp import run_triad, triad_sweep


@pytest.fixture(scope="module")
def contended():
    """Fig. 10(a): full sweep with the other CPU streaming d=1."""
    return {r.inc: r for r in triad_sweep(range(1, 17), other_cpu_active=True)}


@pytest.fixture(scope="module")
def dedicated():
    """Fig. 10(b): same sweep with the other CPU shut off."""
    return {r.inc: r for r in triad_sweep(range(1, 17), other_cpu_active=False)}


class TestFig10aShape:
    def test_best_increments_include_1_6_11(self, contended):
        """Paper: "The best performance we observe for the increments
        1, 6, and 11"."""
        ranked = sorted(contended, key=lambda i: contended[i].cycles)
        assert {1, 6, 11} <= set(ranked[:5])

    def test_inc2_roughly_plus_50_percent(self, contended):
        """Paper: INC=2 costs ≈ +50% over the optimum (barrier on the
        triad).  Accept a generous band around the 1.5× claim."""
        ratio = contended[2].cycles / contended[1].cycles
        assert 1.3 <= ratio <= 2.1

    def test_inc3_roughly_plus_100_percent(self, contended):
        """Paper: INC=3 costs ≈ +100%."""
        ratio = contended[3].cycles / contended[1].cycles
        assert 1.7 <= ratio <= 2.6

    def test_inc16_worst_case(self, contended):
        """INC ≡ 0 mod 16: every stream self-conflicts at one bank."""
        assert contended[16].cycles == max(r.cycles for r in contended.values())

    def test_inc9_worse_than_inc1(self, contended):
        """Paper: INC=9 is theoretically conflict-free but with six ports
        active 16 banks cannot carry it — worse than INC=1."""
        assert contended[9].cycles > contended[1].cycles


class TestFig10bDedicated:
    def test_always_faster_or_equal_than_contended(self, contended, dedicated):
        for inc in range(1, 17):
            assert dedicated[inc].cycles <= contended[inc].cycles, inc

    def test_inc2_and_3_flatten(self, dedicated):
        """Without the competitor the INC=2/3 barriers disappear: the
        times sit near the INC=1 level."""
        base = dedicated[1].cycles
        assert dedicated[2].cycles <= 1.2 * base
        assert dedicated[3].cycles <= 1.2 * base

    def test_self_conflicts_remain(self, dedicated):
        """INC=8 (r=2) and INC=16 (r=1) stay slow even alone."""
        base = dedicated[1].cycles
        assert dedicated[8].cycles > 1.5 * base
        assert dedicated[16].cycles > 3 * base

    def test_no_simultaneous_conflicts_alone(self, dedicated):
        """With one CPU active no cross-CPU conflicts can occur."""
        for inc, r in dedicated.items():
            assert r.simultaneous_conflicts == 0, inc


class TestFig10ConflictPanels:
    def test_bank_conflicts_peak_at_barriered_increments(self, contended):
        """Fig. 10(c): the INC=2/3 barrier shows up as bank conflicts."""
        assert contended[2].bank_conflicts > contended[1].bank_conflicts
        assert contended[3].bank_conflicts > contended[1].bank_conflicts

    def test_multiples_of_section_count_have_no_section_conflicts(
        self, contended
    ):
        """d ≡ 0 mod s: each triad stream stays inside one section, so
        the triad's ports never collide on a path."""
        for inc in (4, 8, 12, 16):
            assert contended[inc].section_conflicts == 0, inc

    def test_simultaneous_conflicts_present_when_contended(self, contended):
        assert any(r.simultaneous_conflicts > 0 for r in contended.values())

    def test_conflicts_explain_slowdown(self, contended, dedicated):
        """Total stall cycles correlate with the execution-time gap."""
        for inc in (2, 3):
            extra_time = contended[inc].cycles - dedicated[inc].cycles
            extra_stalls = (
                contended[inc].bank_stall_cycles
                + contended[inc].section_stall_cycles
                + contended[inc].simultaneous_stall_cycles
            ) - (
                dedicated[inc].bank_stall_cycles
                + dedicated[inc].section_stall_cycles
                + dedicated[inc].simultaneous_stall_cycles
            )
            assert extra_stalls > 0
            assert extra_time > 0
