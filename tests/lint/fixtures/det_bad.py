"""DET001 fixture: one of every nondeterminism hazard."""

import random
import time

import numpy as np


def sample():
    return random.random()  # shared unseeded module RNG


def legacy_numpy():
    np.random.seed(0)  # global numpy RNG state
    return np.random.rand(3)  # legacy global-state API


def unseeded():
    return np.random.default_rng()  # no seed -> irreproducible


def stamped(result):
    return (result, time.time())  # wall clock in a result


def ordered(items):
    out = list(set(items))  # set order leaks into a list
    for x in {3, 1, 2}:  # iterating a set literal
        out.append(x)
    return out

# reprolint: module=repro.viz.det_fixture
