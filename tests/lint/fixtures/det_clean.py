"""DET001 fixture: the deterministic counterparts of every hazard."""

import random
import time

import numpy as np


def sample(seed: int):
    return random.Random(seed).random()  # owned, seeded RNG


def modern_numpy(seed: int):
    return np.random.default_rng(seed).integers(0, 10)


def bench_timing():
    # Monotonic timing is DET001-fine (no wall-clock hazard).  OBS001
    # separately confines it to repro.obs.trace *inside* the package;
    # this benchmark helper sits outside, hence the waiver.
    return time.perf_counter()  # reprolint: disable=OBS001


def ordered(items):
    return sorted(set(items))  # sorted() fixes the order


def distinct(items) -> int:
    return len(set(items))  # order-free consumers are fine

# reprolint: module=repro.viz.det_fixture
