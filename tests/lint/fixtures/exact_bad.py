"""EXACT001 fixture: every numeric operation here contaminates an exact path."""

from fractions import Fraction

HALF = 0.5  # float literal


def bandwidth(grants: int, period: int):
    return grants / period  # true division of ints -> float


def echo(x: Fraction):
    return float(x)  # float() conversion outside a *_float helper


def scale(x):
    x /= 3  # in-place true division
    return x

# reprolint: module=repro.core.exact_fixture
