"""EXACT001 fixture: exact arithmetic plus the blessed *_float boundary."""

from fractions import Fraction


def bandwidth(grants: int, period: int) -> Fraction:
    return Fraction(grants, period)


def halve(n: int) -> int:
    return n // 2


class Outcome:
    def __init__(self, bandwidth: Fraction) -> None:
        self.bandwidth = bandwidth

    @property
    def bandwidth_float(self) -> float:
        # Presentation helpers named *_float are the blessed boundary.
        return float(self.bandwidth)

# reprolint: module=repro.core.exact_fixture
