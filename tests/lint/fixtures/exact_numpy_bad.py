"""EXACT001 fixture: NumPy state arrays drifting off the exact dtypes."""

import numpy as np


def build_state(jobs: int):
    busy = np.zeros(jobs)  # missing dtype -> float64
    clocks = np.arange(jobs, dtype=int)  # platform int can overflow
    weights = np.array([1, 2], dtype=np.float64)  # float dtype
    return busy, clocks, weights


def bandwidth(grants, period):
    return np.true_divide(grants, period)  # float-producing ufunc


def downcast(x):
    return x.astype(np.float32)  # float dtype attribute

# reprolint: module=repro.runner.numpy_fixture
