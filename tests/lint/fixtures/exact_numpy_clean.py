"""EXACT001 fixture: NumPy state arrays pinned to the exact dtypes."""

import numpy as np


def build_state(jobs: int, banks: int):
    busy = np.zeros(jobs * banks, dtype=np.int64)
    active = np.ones(jobs, dtype=np.bool_)
    cols = np.arange(jobs, dtype=np.intp)
    grants = np.array([0] * jobs, dtype=np.int64)
    return busy, active, cols, grants


def advance(busy, active, until):
    mask = np.zeros_like(active)  # *_like inherits the exact dtype
    np.maximum(busy, until, out=busy, where=mask)
    return busy // 2

# reprolint: module=repro.runner.numpy_fixture
