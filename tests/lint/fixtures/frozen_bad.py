"""FROZEN001 fixture: mutating a frozen outcome after construction."""

from dataclasses import dataclass


@dataclass(frozen=True)
class Outcome:
    bandwidth: int


def tweak(o: Outcome) -> Outcome:
    object.__setattr__(o, "bandwidth", 0)  # breaks cache identity
    return o


def strip(o: Outcome) -> Outcome:
    object.__delattr__(o, "bandwidth")  # likewise
    return o
