"""FROZEN001 fixture: the frozen-dataclass idioms that are allowed."""

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class Outcome:
    bandwidth: int
    doubled: int = 0

    def __post_init__(self) -> None:
        # Self-initialization inside __init__-family methods is the
        # standard frozen-dataclass idiom.
        object.__setattr__(self, "doubled", 2 * self.bandwidth)


def tweak(o: Outcome) -> Outcome:
    return replace(o, bandwidth=0)
