"""LAYER001 fixture: engine primitives invoked outside the blessed layer."""

from repro.runner.batchsim import BatchSim, run_span_batch, run_steady_batch
from repro.sim.engine import Engine, simulate_streams
from repro.sim.port import Port


def direct(config, streams):
    ports = [Port(index=0, cpu=0)]  # direct port construction
    engine = Engine(config, ports)  # direct engine construction
    res = simulate_streams(config, streams)  # bypasses run(job)
    return engine, res


def direct_batch(jobs):
    sim = BatchSim(jobs)  # direct SoA core construction
    steady = run_steady_batch(jobs)  # bypasses BatchBackend bookkeeping
    span = run_span_batch(jobs)  # likewise
    return sim, steady, span

# reprolint: module=repro.viz.layer_fixture
