"""LAYER001 fixture: engine primitives invoked outside the blessed layer."""

from repro.sim.engine import Engine, simulate_streams
from repro.sim.port import Port


def direct(config, streams):
    ports = [Port(index=0, cpu=0)]  # direct port construction
    engine = Engine(config, ports)  # direct engine construction
    res = simulate_streams(config, streams)  # bypasses run(job)
    return engine, res
