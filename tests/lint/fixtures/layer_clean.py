"""LAYER001 fixture: everything rides the runner layer."""

from repro.runner import SimJob, SweepExecutor, run
from repro.sim.engine import SimulationResult  # importing types is fine


def steady(config, specs):
    job = SimJob.from_specs(config, specs)
    return run(job, backend="fast")


def sweep(jobs) -> list:
    with SweepExecutor() as ex:
        return ex.run_many(jobs)


def annotate(res: SimulationResult) -> int:
    return res.cycles
