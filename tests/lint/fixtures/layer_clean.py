"""LAYER001 fixture: everything rides the runner layer."""

from repro.runner import SimJob, SweepExecutor, run
from repro.sim.engine import SimulationResult  # importing types is fine


def steady(config, specs):
    job = SimJob.from_specs(config, specs)
    return run(job, backend="fast")


def sweep(jobs) -> list:
    with SweepExecutor() as ex:
        return ex.run_many(jobs)


def population(jobs) -> list:
    from repro.runner import get_backend

    # The batch core is reached through its backend, never directly.
    return get_backend("batch").run_batch(jobs)


def annotate(res: SimulationResult) -> int:
    return res.cycles

# reprolint: module=repro.viz.layer_fixture
