"""OBS001 fixture: ad-hoc monotonic-clock reads outside repro.obs.trace."""

import time
from time import perf_counter_ns


def naive_timing(fn):
    start = time.perf_counter()  # line 8: flagged
    fn()
    return time.perf_counter() - start  # line 10: flagged


def nanosecond_stamp():
    return perf_counter_ns()  # line 14: flagged (from-import resolves)


def cpu_budget():
    return time.process_time()  # line 18: flagged

# reprolint: module=repro.viz.obs_fixture
