"""OBS001 fixture: timing rides the sanctioned span boundary."""

from repro.obs import trace


def timed_sweep(jobs):
    with trace.span("executor.run_many", jobs=len(jobs)):
        return [job for job in jobs]


def stamped(recorder):
    return [s.duration_ns for s in recorder.finished()]

# reprolint: module=repro.viz.obs_fixture
