from repro.core.util import used

CORE = used
