__all__ = ["used", "unused"]


def used():
    return 1


def unused():
    return 2
