__all__ = ["main"]


def main() -> int:
    return 0
