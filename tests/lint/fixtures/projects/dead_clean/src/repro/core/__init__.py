from repro.core.util import both, used

CORE = (used, both)
