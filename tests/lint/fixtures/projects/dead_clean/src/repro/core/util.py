__all__ = ["both", "used"]


def used():
    return 1


def both():
    return 2
