"""IMPORT001 bad fixture tree: three layering violations."""
