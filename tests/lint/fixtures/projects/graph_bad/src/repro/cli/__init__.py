def main() -> int:
    return 0
