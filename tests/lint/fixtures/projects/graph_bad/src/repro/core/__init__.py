from repro.cli import main  # upward: core (rank 1) -> cli (rank 6)

CORE = main
