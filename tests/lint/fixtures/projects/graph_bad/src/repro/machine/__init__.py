import repro.sim  # eager other half of the cycle

MACHINE = 1
