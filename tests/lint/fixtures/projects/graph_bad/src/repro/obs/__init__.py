from repro.core import CORE  # leaf: obs imports another repro package

OBS = CORE
