from repro.sim.arbiter import make_arbiter  # upward: not a blessed module

SCHED = make_arbiter
