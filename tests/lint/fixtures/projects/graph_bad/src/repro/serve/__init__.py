from repro.cli import main  # upward: serve (rank 5) -> cli (rank 6)

SERVE = main
