import repro.machine  # eager half of the sim <-> machine cycle

SIM = 1
