def make_arbiter():
    return None
