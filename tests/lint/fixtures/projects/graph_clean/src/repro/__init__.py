"""IMPORT001 clean fixture tree: the layer DAG, respected."""
