from repro.runner import RUNNER
from repro.serve import SERVE
from repro.sim import SIM


def main() -> int:
    return RUNNER + SIM + SERVE
