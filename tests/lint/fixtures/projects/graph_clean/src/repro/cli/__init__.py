from repro.runner import RUNNER
from repro.sim import SIM


def main() -> int:
    return RUNNER + SIM
