from repro.obs import OBS  # downward: core -> obs

CORE = OBS
