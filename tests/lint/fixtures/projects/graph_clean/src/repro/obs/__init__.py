OBS = 1
