from repro.core import CORE  # downward: runner -> core

RUNNER = CORE
