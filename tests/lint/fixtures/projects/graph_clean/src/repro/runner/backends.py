from repro.sim.engine import Engine  # blessed engine-primitive boundary


def run(cfg):
    return Engine(cfg)
