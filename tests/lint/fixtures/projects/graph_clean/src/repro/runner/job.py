def validate(spec):
    # blessed spec-validation boundary, lazily imported like the real
    # SimJob.__post_init__
    from repro.sim.arbiter import canonical_arbiter

    return canonical_arbiter(spec, 1)
