from repro.runner import RUNNER  # downward: serve -> runner

SERVE = RUNNER
