SIM = 1
