def canonical_arbiter(spec, n_ports):
    return spec
