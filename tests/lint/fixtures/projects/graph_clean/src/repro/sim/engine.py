from typing import TYPE_CHECKING

if TYPE_CHECKING:  # lazy: sanctioned cycle-breaker
    from repro.runner import RUNNER  # noqa: F401


class Engine:
    def __init__(self, cfg):
        self.cfg = cfg

    def job_of(self):
        from repro.runner import RUNNER  # lazy, function-scoped

        return RUNNER
