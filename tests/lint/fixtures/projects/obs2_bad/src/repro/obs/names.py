EXECUTOR_RUNS = "repro.executor.runs"
