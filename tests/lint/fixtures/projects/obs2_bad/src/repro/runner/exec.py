from repro.obs import names
from repro.obs.names import MISSING  # constant does not exist


def record(reg, dynamic_name):
    reg.counter("repro.executor.runs")  # inline name
    reg.gauge(names.NOPE)  # unknown names constant
    reg.counter(names.EXECUTOR_RUNS)  # fine
    reg.histogram(dynamic_name)  # bare name: runtime contract's job
    return MISSING
