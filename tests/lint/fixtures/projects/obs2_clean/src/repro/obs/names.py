EXECUTOR_RUNS = "repro.executor.runs"
SPAN_RUN = "repro.run"
