from repro.obs import names
from repro.obs.names import SPAN_RUN


def record(reg, tracer, dynamic_name):
    reg.counter(names.EXECUTOR_RUNS)
    tracer.span(SPAN_RUN)
    reg.histogram(dynamic_name)
