from concurrent.futures import ProcessPoolExecutor
from functools import partial

from repro.runner.workers import helper

COUNT = 0


def _bump(job):
    global COUNT
    COUNT += 1
    return job


def run_all(jobs):
    with ProcessPoolExecutor() as pool:
        pool.submit(lambda j: j, jobs[0])  # lambda: not picklable
        pool.submit(partial(helper, 1))  # call-result worker
        pool.map(_bump, jobs)  # worker mutates module globals

        def local(j):
            return j

        pool.submit(local, jobs[0])  # nested function
        return pool


class Runner:
    def go(self, pool, job):
        pool.submit(self.work, job)  # bound method

    def work(self, job):
        return job
