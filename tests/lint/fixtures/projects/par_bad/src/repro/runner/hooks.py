import os

RATE = os.environ.get("REPRO_CHAOS_RATE", "0")  # literal outside resilience
