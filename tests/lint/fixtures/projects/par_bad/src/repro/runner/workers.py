def helper(x):
    return x
