from concurrent.futures import ProcessPoolExecutor

from repro.runner.workers import helper


def _worker(job):
    return job


def run_all(jobs):
    with ProcessPoolExecutor() as pool:
        pool.submit(_worker, jobs[0])
        pool.submit(helper, jobs[0])
        return list(pool.map(_worker, jobs))
