CHAOS_RATE_ENV = "REPRO_CHAOS_RATE"  # the one module allowed to spell it
