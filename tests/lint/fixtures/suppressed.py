"""Suppression fixture: every violation below carries a waiver."""

from fractions import Fraction


def ratio(a: int, b: int) -> float:
    return a / b  # reprolint: disable=EXACT001


def ratio_next(a: int, b: int) -> float:
    # reprolint: disable-next=EXACT001
    return a / b


def several(x: Fraction) -> float:
    return float(x) / 2.0  # reprolint: disable=all

# reprolint: module=repro.core.suppressed_fixture
