"""API001: static `__all__` <-> docs/API.md drift detection."""

from __future__ import annotations

import textwrap

from repro.lint import get_rules, lint_paths

WIDGET = textwrap.dedent(
    '''
    """A widget package."""

    __all__ = ["alpha", "beta"]


    def alpha() -> int:
        return 1


    def beta() -> int:
        return 2
    '''
)


def make_tree(tmp_path, documented: list[str]):
    (tmp_path / "src" / "repro" / "widget").mkdir(parents=True)
    (tmp_path / "src" / "repro" / "__init__.py").write_text("")
    (tmp_path / "src" / "repro" / "widget" / "__init__.py").write_text(WIDGET)
    (tmp_path / "tools").mkdir()
    (tmp_path / "tools" / "gen_api_doc.py").write_text(
        'PACKAGES = ["repro.widget"]\n'
    )
    rows = "\n".join(f"| `{s}` | func | does things |" for s in documented)
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "API.md").write_text(
        "# API index\n\n## `repro.widget`\n\n"
        "| symbol | kind | summary |\n|---|---|---|\n" + rows + "\n"
    )
    return tmp_path


def run_api001(root):
    return [
        f
        for f in lint_paths(
            [root / "src"], rules=get_rules(["API001"]), root=root
        ).findings
    ]


def test_missing_symbol_is_drift(tmp_path):
    root = make_tree(tmp_path, documented=["alpha"])
    findings = run_api001(root)
    assert len(findings) == 1
    assert "repro.widget.beta" in findings[0].message
    assert "missing" in findings[0].message


def test_stale_symbol_is_drift(tmp_path):
    root = make_tree(tmp_path, documented=["alpha", "beta", "gamma"])
    findings = run_api001(root)
    assert len(findings) == 1
    assert "repro.widget.gamma" in findings[0].message
    assert "no longer" in findings[0].message


def test_in_sync_doc_is_clean(tmp_path):
    root = make_tree(tmp_path, documented=["alpha", "beta"])
    assert run_api001(root) == []


def test_missing_section_reported(tmp_path):
    root = make_tree(tmp_path, documented=["alpha", "beta"])
    (root / "docs" / "API.md").write_text("# API index\n")
    findings = run_api001(root)
    assert len(findings) == 1
    assert "no section" in findings[0].message


def test_missing_doc_file_reported(tmp_path):
    root = make_tree(tmp_path, documented=["alpha", "beta"])
    (root / "docs" / "API.md").unlink()
    findings = run_api001(root)
    assert len(findings) == 1
    assert "missing" in findings[0].message


def test_real_repo_doc_is_in_sync():
    import pathlib

    root = pathlib.Path(__file__).resolve().parents[2]
    assert run_api001(root) == [], "docs/API.md drifted; regenerate"
