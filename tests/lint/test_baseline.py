"""Committed-baseline mode: land a strict rule without a big-bang cleanup."""

from __future__ import annotations

import json
import pathlib

from repro.lint import lint_paths, load_baseline, write_baseline
from repro.lint.framework import Finding


def make_tree(tmp_path: pathlib.Path) -> pathlib.Path:
    (tmp_path / "pyproject.toml").write_text("")
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (tmp_path / "src" / "repro" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "legacy.py").write_text("def f(a, b):\n    return a / b\n")
    return tmp_path


def run(tree, **kw):
    return lint_paths([tree / "src"], root=tree, cache=None, **kw)


class TestRoundTrip:
    def test_write_then_load_counts_fingerprints(self, tmp_path):
        f = Finding(path="a.py", line=3, col=0, rule="X001", message="m")
        g = Finding(path="a.py", line=9, col=0, rule="X001", message="m")
        path = tmp_path / "baseline.json"
        write_baseline(path, [f, g])
        loaded = load_baseline(path)
        assert loaded == {("a.py", "X001", "m"): 2}
        doc = json.loads(path.read_text())
        assert doc["tool"] == "reprolint"


class TestDriver:
    def test_update_baseline_snapshots_and_reports_clean(self, tmp_path):
        tree = make_tree(tmp_path)
        baseline = tree / "baseline.json"
        report = run(tree, baseline=baseline, update_baseline=True)
        assert report.clean
        assert report.baselined > 0
        assert baseline.exists()

    def test_baselined_findings_are_filtered(self, tmp_path):
        tree = make_tree(tmp_path)
        baseline = tree / "baseline.json"
        run(tree, baseline=baseline, update_baseline=True)
        report = run(tree, baseline=baseline)
        assert report.clean
        assert report.baselined > 0

    def test_new_findings_still_fail(self, tmp_path):
        tree = make_tree(tmp_path)
        baseline = tree / "baseline.json"
        run(tree, baseline=baseline, update_baseline=True)
        (tree / "src" / "repro" / "core" / "fresh.py").write_text(
            "Y = 0.5\n"
        )
        report = run(tree, baseline=baseline)
        assert not report.clean
        assert all(f.path.endswith("fresh.py") for f in report.findings)

    def test_baseline_is_line_drift_tolerant(self, tmp_path):
        # Fingerprints are (path, rule, message): moving the offending
        # line does not un-baseline it.
        tree = make_tree(tmp_path)
        baseline = tree / "baseline.json"
        run(tree, baseline=baseline, update_baseline=True)
        legacy = tree / "src" / "repro" / "core" / "legacy.py"
        legacy.write_text("# shifted\n" + legacy.read_text())
        report = run(tree, baseline=baseline)
        assert report.clean

    def test_missing_baseline_file_filters_nothing(self, tmp_path):
        tree = make_tree(tmp_path)
        report = run(tree, baseline=tree / "never-written.json")
        assert not report.clean
