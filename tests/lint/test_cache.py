"""Incremental cache: digest-keyed replay, invalidation, pooled linting."""

from __future__ import annotations

import json
import pathlib

from repro.lint import LintCache, get_rules, lint_paths, rules_digest


def make_tree(tmp_path: pathlib.Path) -> pathlib.Path:
    (tmp_path / "pyproject.toml").write_text("")
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (tmp_path / "src" / "repro" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "bad.py").write_text("def f(a, b):\n    return a / b\n")
    (pkg / "ok.py").write_text("X = 1\n")
    return tmp_path


def run(tree, **kw):
    kw.setdefault("cache", tree / ".reprolint-cache.json")
    return lint_paths([tree / "src"], root=tree, **kw)


class TestWarmCache:
    def test_warm_rerun_lints_zero_files(self, tmp_path):
        tree = make_tree(tmp_path)
        cold = run(tree)
        assert cold.files_linted == cold.files_checked > 0
        assert cold.files_cached == 0
        warm = run(tree)
        assert warm.files_linted == 0
        assert warm.files_cached == warm.files_checked
        assert warm.findings == cold.findings

    def test_edited_file_relints_alone(self, tmp_path):
        tree = make_tree(tmp_path)
        run(tree)
        (tree / "src" / "repro" / "core" / "ok.py").write_text("X = 2\n")
        after = run(tree)
        assert after.files_linted == 1
        assert after.files_cached == after.files_checked - 1

    def test_project_findings_replay_from_index_digest(self, tmp_path):
        tree = make_tree(tmp_path)
        (tree / "src" / "repro" / "core" / "dead.py").write_text(
            '__all__ = ["nope"]\n\n\ndef nope():\n    return 0\n'
        )
        cold = run(tree)
        warm = run(tree)
        assert any(f.rule == "DEAD001" for f in warm.findings)
        assert warm.findings == cold.findings
        assert warm.files_linted == 0


class TestInvalidation:
    def test_rule_set_change_discards_everything(self, tmp_path):
        tree = make_tree(tmp_path)
        first = run(tree, rules=get_rules(["EXACT001"]))
        assert first.files_linted > 0
        # Same tree, different active rules: the ruleset digest differs,
        # so nothing replays from cache.
        second = run(tree, rules=get_rules(["EXACT001", "DET001"]))
        assert second.files_linted == second.files_checked
        assert second.files_cached == 0

    def test_rules_digest_depends_on_active_codes(self):
        one = rules_digest(get_rules(["EXACT001"]))
        two = rules_digest(get_rules(["EXACT001", "DET001"]))
        assert one != two
        assert one == rules_digest(get_rules(["EXACT001"]))

    def test_corrupt_cache_file_means_cold_start(self, tmp_path):
        tree = make_tree(tmp_path)
        cache_file = tree / ".reprolint-cache.json"
        run(tree)
        cache_file.write_text("{not json")
        report = run(tree)
        assert report.files_linted == report.files_checked

    def test_stale_ruleset_not_loaded(self, tmp_path):
        tree = make_tree(tmp_path)
        cache_file = tree / ".reprolint-cache.json"
        run(tree)
        doc = json.loads(cache_file.read_text())
        doc["ruleset"] = "0" * 64
        cache_file.write_text(json.dumps(doc))
        cache = LintCache.load(cache_file, rules_digest(get_rules()))
        assert not cache.loaded


class TestJobs:
    def test_pooled_linting_matches_serial(self, tmp_path):
        tree = make_tree(tmp_path)
        serial = lint_paths([tree / "src"], root=tree, cache=None)
        pooled = lint_paths([tree / "src"], root=tree, cache=None, jobs=2)
        assert pooled.findings == serial.findings
        assert pooled.files_linted == serial.files_linted

    def test_pooled_results_populate_the_cache(self, tmp_path):
        tree = make_tree(tmp_path)
        run(tree, jobs=2)
        warm = run(tree)
        assert warm.files_linted == 0
