"""reprolint CLI surfaces: exit codes, JSON artifact, self-clean gate.

The subprocess tests exercise ``tools/run_reprolint.py`` exactly as CI
invokes it, including the acceptance property that an injected
EXACT001/DET001 violation turns the exit code red.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys

import pytest

from repro.cli import main as repro_main
from repro.lint import lint_paths
from repro.lint.cli import build_parser
from repro.lint.report import JSON_SCHEMA_VERSION

ROOT = pathlib.Path(__file__).resolve().parents[2]
TOOL = ROOT / "tools" / "run_reprolint.py"


def run_tool(*args: str, cwd=ROOT):
    return subprocess.run(
        [sys.executable, str(TOOL), *map(str, args)],
        capture_output=True,
        text=True,
        cwd=cwd,
    )


class TestSelfClean:
    def test_src_tree_is_clean_in_process(self):
        report = lint_paths([ROOT / "src"], root=ROOT)
        assert report.clean, "\n".join(f.render() for f in report.findings)
        assert report.files_checked > 50

    def test_whole_tree_is_clean_in_process(self):
        # The acceptance gate: src, tests AND tools carry zero
        # unsuppressed findings, stale waivers included.
        report = lint_paths(
            [ROOT / "src", ROOT / "tests", ROOT / "tools"],
            root=ROOT,
            report_unused_suppressions=True,
        )
        assert report.clean, "\n".join(f.render() for f in report.findings)

    def test_tool_exits_zero_on_src(self):
        proc = run_tool("src")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout


def _tree_with(tmp_path: pathlib.Path, source: str) -> pathlib.Path:
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (tmp_path / "pyproject.toml").write_text("")
    (pkg / "injected.py").write_text(source)
    return tmp_path


class TestInjectedViolations:
    def test_exact001_injection_fails_the_run(self, tmp_path):
        tree = _tree_with(tmp_path, "def f(a, b):\n    return a / b\n")
        out = tmp_path / "report.json"
        proc = run_tool(str(tree / "src"), "--output", out, cwd=tmp_path)
        assert proc.returncode == 1
        report = json.loads(out.read_text())
        assert report["clean"] is False
        assert report["counts"].get("EXACT001") == 1

    def test_det001_injection_fails_the_run(self, tmp_path):
        tree = _tree_with(
            tmp_path, "import random\n\nx = random.random()\n"
        )
        proc = run_tool(str(tree / "src"), cwd=tmp_path)
        assert proc.returncode == 1
        assert "DET001" in proc.stdout

    def test_suppressed_injection_passes(self, tmp_path):
        tree = _tree_with(
            tmp_path,
            "def f(a, b):\n"
            "    return a / b  # reprolint: disable=EXACT001\n",
        )
        proc = run_tool(str(tree / "src"), cwd=tmp_path)
        assert proc.returncode == 0


class TestJsonReport:
    def test_schema_fields(self, tmp_path):
        out = tmp_path / "r.json"
        proc = run_tool("src", "--format", "json", "--output", out)
        assert proc.returncode == 0
        stdout_doc = json.loads(proc.stdout)
        file_doc = json.loads(out.read_text())
        assert stdout_doc == file_doc
        for key in (
            "schema_version", "tool", "files_checked", "files_linted",
            "files_cached", "baselined", "clean", "counts", "findings",
            "root",
        ):
            assert key in file_doc
        assert file_doc["tool"] == "reprolint"
        assert file_doc["schema_version"] == JSON_SCHEMA_VERSION == 2


class TestNewFlags:
    def test_parser_knows_the_production_flags(self):
        args = build_parser().parse_args(
            ["src", "--jobs", "4", "--format", "sarif", "--no-cache",
             "--baseline", "b.json", "--report-unused-suppressions"]
        )
        assert args.jobs == 4
        assert args.output_format == "sarif"
        assert args.no_cache
        assert args.baseline == "b.json"
        assert args.report_unused_suppressions

    def test_sarif_output_to_file(self, tmp_path):
        out = tmp_path / "lint.sarif"
        proc = run_tool(
            "src", "--format", "sarif", "--output", out, "--no-cache"
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        doc = json.loads(out.read_text())
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["tool"]["driver"]["name"] == "reprolint"
        assert json.loads(proc.stdout) == doc

    def test_jobs_flag_matches_serial(self, tmp_path):
        tree = _tree_with(tmp_path, "def f(a, b):\n    return a / b\n")
        serial = run_tool(str(tree / "src"), "--no-cache", cwd=tmp_path)
        pooled = run_tool(
            str(tree / "src"), "--no-cache", "--jobs", "2", cwd=tmp_path
        )
        assert serial.returncode == pooled.returncode == 1
        assert serial.stdout == pooled.stdout

    def test_warm_cache_relints_zero_files(self, tmp_path):
        tree = _tree_with(tmp_path, "X = 1\n")
        run_tool(str(tree / "src"), cwd=tmp_path)
        assert (tmp_path / ".reprolint-cache.json").exists()
        out = tmp_path / "warm.json"
        proc = run_tool(
            str(tree / "src"), "--format", "json", "--output", out,
            cwd=tmp_path,
        )
        assert proc.returncode == 0
        warm = json.loads(out.read_text())
        assert warm["files_linted"] == 0
        assert warm["files_cached"] == warm["files_checked"]

    def test_baseline_flags_roundtrip(self, tmp_path):
        tree = _tree_with(tmp_path, "def f(a, b):\n    return a / b\n")
        baseline = tmp_path / "baseline.json"
        first = run_tool(
            str(tree / "src"), "--baseline", baseline,
            "--update-baseline", "--no-cache", cwd=tmp_path,
        )
        assert first.returncode == 0, first.stdout + first.stderr
        second = run_tool(
            str(tree / "src"), "--baseline", baseline, "--no-cache",
            cwd=tmp_path,
        )
        assert second.returncode == 0
        assert "baselined" in second.stdout


class TestCliErrors:
    def test_unknown_rule_is_usage_error(self):
        proc = run_tool("src", "--rules", "BOGUS001")
        assert proc.returncode == 2
        assert "unknown rule" in proc.stderr

    def test_update_baseline_requires_baseline(self):
        proc = run_tool("src", "--update-baseline")
        assert proc.returncode == 2
        assert "--baseline" in proc.stderr

    def test_zero_jobs_is_usage_error(self):
        proc = run_tool("src", "--jobs", "0")
        assert proc.returncode == 2

    def test_missing_path_is_usage_error(self):
        proc = run_tool("definitely/not/here")
        assert proc.returncode == 2

    def test_list_rules(self):
        proc = run_tool("--list-rules")
        assert proc.returncode == 0
        for code in ("EXACT001", "DET001", "LAYER001", "API001", "FROZEN001"):
            assert code in proc.stdout


class TestReproMemSubcommand:
    def test_lint_subcommand_clean(self, capsys, monkeypatch):
        monkeypatch.chdir(ROOT)
        assert repro_main(["lint", "src"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_subcommand_rules_filter(self, capsys, monkeypatch):
        monkeypatch.chdir(ROOT)
        assert repro_main(["lint", "src", "--rules", "FROZEN001"]) == 0

    @pytest.mark.parametrize("flag", ["--list-rules"])
    def test_lint_subcommand_list(self, capsys, flag):
        assert repro_main(["lint", flag]) == 0
        assert "LAYER001" in capsys.readouterr().out
