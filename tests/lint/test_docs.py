"""docs/LINT.md is diffed against the live rule registry.

Mirrors the docs/OBSERVABILITY.md name-contract test: a rule that is
registered but undocumented fails, and so does a documented code that
no longer exists in the registry.
"""

from __future__ import annotations

import pathlib
import re

from repro.lint import all_rules
from repro.lint.framework import PARSE_ERROR_CODE, UNUSED_SUPPRESSION_CODE

DOC = pathlib.Path(__file__).resolve().parents[2] / "docs" / "LINT.md"

# Codes are documented as `CODE001` table cells.
_CODE = re.compile(r"`([A-Z]+[0-9]{3})`")


def documented_codes() -> set[str]:
    return set(_CODE.findall(DOC.read_text()))


class TestCatalogSync:
    def test_every_registered_rule_documented(self):
        doc = DOC.read_text()
        missing = [r.code for r in all_rules() if f"`{r.code}`" not in doc]
        assert not missing, f"rules missing from docs/LINT.md: {missing}"

    def test_every_rule_name_documented(self):
        doc = DOC.read_text()
        missing = [r.name for r in all_rules() if f"`{r.name}`" not in doc]
        assert not missing, f"rule names missing from docs/LINT.md: {missing}"

    def test_no_phantom_codes_documented(self):
        live = {r.code for r in all_rules()}
        live |= {PARSE_ERROR_CODE, UNUSED_SUPPRESSION_CODE}
        phantom = documented_codes() - live
        assert not phantom, f"docs/LINT.md documents unknown codes: {phantom}"

    def test_pseudo_rules_documented(self):
        assert {PARSE_ERROR_CODE, UNUSED_SUPPRESSION_CODE} <= documented_codes()
