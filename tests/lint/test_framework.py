"""reprolint framework: registry, suppressions, module mapping, driver."""

from __future__ import annotations

import pytest

from repro.lint import (
    all_rules,
    get_rules,
    lint_paths,
    lint_source,
    module_name_for_path,
)
from repro.lint.framework import (
    PARSE_ERROR_CODE,
    UNUSED_SUPPRESSION_CODE,
    Suppressions,
    find_project_root,
)

EXPECTED_CODES = {
    "API001", "DEAD001", "DET001", "EXACT001", "FROZEN001", "IMPORT001",
    "LAYER001", "OBS001", "OBS002", "PAR001",
}


class TestRegistry:
    def test_all_builtin_rules_registered(self):
        assert {r.code for r in all_rules()} == EXPECTED_CODES

    def test_rules_carry_name_and_description(self):
        for rule in all_rules():
            assert rule.name and rule.description, rule.code

    def test_get_rules_by_code(self):
        (rule,) = get_rules(["EXACT001"])
        assert rule.code == "EXACT001"

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown rule"):
            get_rules(["NOPE999"])


class TestModuleMapping:
    def test_package_module(self):
        assert (
            module_name_for_path("src/repro/core/single.py")
            == "repro.core.single"
        )

    def test_init_maps_to_package(self):
        assert module_name_for_path("src/repro/runner/__init__.py") == "repro.runner"

    def test_outside_repro_tree(self):
        assert module_name_for_path("tests/lint/fixtures/exact_bad.py") == ""

    def test_repro_root_init(self):
        assert module_name_for_path("src/repro/__init__.py") == "repro"

    def test_last_repro_component_wins(self):
        # Vendored or nested checkouts anchor at the innermost tree.
        assert (
            module_name_for_path("vendor/repro/stuff/repro/core/x.py")
            == "repro.core.x"
        )

    def test_bare_repro_directory(self):
        assert module_name_for_path("repro/obs/trace.py") == "repro.obs.trace"


class TestFindProjectRoot:
    def test_walks_up_to_pyproject(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("")
        deep = tmp_path / "src" / "repro" / "core"
        deep.mkdir(parents=True)
        assert find_project_root(deep) == tmp_path

    def test_accepts_a_file_start(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("")
        target = tmp_path / "src"
        target.mkdir()
        (target / "x.py").write_text("")
        assert find_project_root(target / "x.py") == tmp_path

    def test_root_itself_wins_over_ancestors(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("")
        nested = tmp_path / "inner"
        nested.mkdir()
        (nested / "pyproject.toml").write_text("")
        assert find_project_root(nested) == nested

    def test_none_without_pyproject(self, tmp_path):
        deep = tmp_path / "a" / "b"
        deep.mkdir(parents=True)
        assert find_project_root(deep) is None


class TestSuppressions:
    def test_same_line(self):
        s = Suppressions.parse("x = a / b  # reprolint: disable=EXACT001\n")
        assert s.is_suppressed("EXACT001", 1)
        assert not s.is_suppressed("DET001", 1)

    def test_disable_next(self):
        src = "# reprolint: disable-next=DET001\nimport random\n"
        s = Suppressions.parse(src)
        assert s.is_suppressed("DET001", 2)
        assert not s.is_suppressed("DET001", 1)

    def test_disable_file(self):
        s = Suppressions.parse("# reprolint: disable-file=LAYER001\n\nx = 1\n")
        assert s.is_suppressed("LAYER001", 3)

    def test_disable_all(self):
        s = Suppressions.parse("x = 1.0  # reprolint: disable=all\n")
        assert s.is_suppressed("EXACT001", 1)
        assert s.is_suppressed("FROZEN001", 1)

    def test_comma_separated(self):
        s = Suppressions.parse("x = y  # reprolint: disable=EXACT001, DET001\n")
        assert s.is_suppressed("EXACT001", 1)
        assert s.is_suppressed("DET001", 1)
        assert not s.is_suppressed("LAYER001", 1)

    def test_suppressed_finding_dropped_by_driver(self):
        findings = lint_source(
            "x = 1 / 3  # reprolint: disable=EXACT001\n",
            module="repro.core.fixture",
        )
        assert findings == []

    def test_multiple_directives_on_one_line(self):
        # The parser honours every directive, not just the first match.
        s = Suppressions.parse(
            "x = y  "
            "# reprolint: disable=EXACT001  # reprolint: disable=DET001\n"
        )
        assert s.is_suppressed("EXACT001", 1)
        assert s.is_suppressed("DET001", 1)
        assert not s.is_suppressed("LAYER001", 1)

    def test_multiple_directives_drop_both_findings(self):
        src = (
            "import time\n"
            "x = time.time() / 3  "
            "# reprolint: disable=EXACT001  # reprolint: disable=DET001\n"
        )
        assert lint_source(src, module="repro.core.fixture") == []

    def test_precedence_is_union_not_override(self):
        # disable-file, disable-next and disable all apply
        # independently; any matching waiver suppresses.
        src = (
            "# reprolint: disable-file=EXACT001\n"
            "# reprolint: disable-next=DET001\n"
            "x = 1\n"
        )
        s = Suppressions.parse(src)
        assert s.is_suppressed("EXACT001", 99)   # file-wide
        assert s.is_suppressed("DET001", 3)      # next line only
        assert not s.is_suppressed("DET001", 4)
        assert not s.is_suppressed("LAYER001", 3)

    def test_unused_tracking(self):
        s = Suppressions.parse(
            "a = 1  # reprolint: disable=EXACT001,DET001\n"
        )
        s.is_suppressed("EXACT001", 1)
        stale = s.unused({"EXACT001", "DET001"})
        assert stale == [(1, "DET001")]

    def test_unused_ignores_inactive_rules(self):
        s = Suppressions.parse("a = 1  # reprolint: disable=DET001\n")
        # DET001 did not run this invocation: its waiver is not stale.
        assert s.unused({"EXACT001"}) == []


class TestDriver:
    def test_module_override_controls_scope(self):
        src = "x = 1 / 3\n"
        assert lint_source(src, module="repro.core.fixture")
        # Out of EXACT001 scope: the same source is clean.
        assert not lint_source(src, module="repro.viz.fixture")

    def test_syntax_error_reported_as_finding(self):
        (finding,) = lint_source("def broken(:\n", path="bad.py")
        assert finding.rule == PARSE_ERROR_CODE
        assert "does not parse" in finding.message

    def test_null_byte_reported_as_finding(self):
        # ast.parse raises bare ValueError (not SyntaxError) on null
        # bytes; the driver must report, not crash.
        (finding,) = lint_source("x = 1\x00\n", path="hostile.py")
        assert finding.rule == PARSE_ERROR_CODE
        assert "does not parse" in finding.message

    def test_null_byte_file_on_disk(self, tmp_path):
        hostile = tmp_path / "src"
        hostile.mkdir()
        (hostile / "h.py").write_bytes(b"x = 1\x00\n")
        report = lint_paths([hostile], root=tmp_path)
        assert [f.rule for f in report.findings] == [PARSE_ERROR_CODE]

    def test_findings_sorted_by_location(self):
        src = "y = 2.0\nx = 1 / 3\n"
        findings = lint_source(src, module="repro.core.fixture")
        assert [f.line for f in findings] == sorted(f.line for f in findings)

    def test_lint_paths_counts_files(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "b.py").write_text("y = 2\n")
        report = lint_paths([tmp_path], root=tmp_path)
        assert report.files_checked == 2
        assert report.clean


class TestUnusedSuppressionReport:
    def _tree(self, tmp_path, source):
        (tmp_path / "pyproject.toml").write_text("")
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (tmp_path / "src" / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text(source)
        return tmp_path

    def test_stale_waiver_flagged(self, tmp_path):
        tree = self._tree(tmp_path, "x = 1  # reprolint: disable=EXACT001\n")
        report = lint_paths(
            [tree / "src"], root=tree, report_unused_suppressions=True
        )
        (finding,) = report.findings
        assert finding.rule == UNUSED_SUPPRESSION_CODE
        assert "EXACT001" in finding.message
        assert finding.line == 1

    def test_live_waiver_not_flagged(self, tmp_path):
        tree = self._tree(
            tmp_path, "x = 1 / 3  # reprolint: disable=EXACT001\n"
        )
        report = lint_paths(
            [tree / "src"], root=tree, report_unused_suppressions=True
        )
        assert report.clean, [f.render() for f in report.findings]

    def test_live_waiver_accounted_from_cache(self, tmp_path):
        # The waived finding is replayed from the cache on a warm run,
        # so the directive still counts as used without re-linting.
        tree = self._tree(
            tmp_path, "x = 1 / 3  # reprolint: disable=EXACT001\n"
        )
        cache = tree / ".reprolint-cache.json"
        for _ in range(2):
            report = lint_paths(
                [tree / "src"], root=tree, cache=cache,
                report_unused_suppressions=True,
            )
            assert report.clean, [f.render() for f in report.findings]
        assert report.files_linted == 0

    def test_off_by_default(self, tmp_path):
        tree = self._tree(tmp_path, "x = 1  # reprolint: disable=EXACT001\n")
        report = lint_paths([tree / "src"], root=tree)
        assert report.clean
