"""reprolint framework: registry, suppressions, module mapping, driver."""

from __future__ import annotations

import pytest

from repro.lint import (
    all_rules,
    get_rules,
    lint_paths,
    lint_source,
    module_name_for_path,
)
from repro.lint.framework import PARSE_ERROR_CODE, Suppressions

EXPECTED_CODES = {
    "API001", "DET001", "EXACT001", "FROZEN001", "LAYER001", "OBS001",
}


class TestRegistry:
    def test_all_builtin_rules_registered(self):
        assert {r.code for r in all_rules()} == EXPECTED_CODES

    def test_rules_carry_name_and_description(self):
        for rule in all_rules():
            assert rule.name and rule.description, rule.code

    def test_get_rules_by_code(self):
        (rule,) = get_rules(["EXACT001"])
        assert rule.code == "EXACT001"

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown rule"):
            get_rules(["NOPE999"])


class TestModuleMapping:
    def test_package_module(self):
        assert (
            module_name_for_path("src/repro/core/single.py")
            == "repro.core.single"
        )

    def test_init_maps_to_package(self):
        assert module_name_for_path("src/repro/runner/__init__.py") == "repro.runner"

    def test_outside_repro_tree(self):
        assert module_name_for_path("tests/lint/fixtures/exact_bad.py") == ""


class TestSuppressions:
    def test_same_line(self):
        s = Suppressions.parse("x = a / b  # reprolint: disable=EXACT001\n")
        assert s.is_suppressed("EXACT001", 1)
        assert not s.is_suppressed("DET001", 1)

    def test_disable_next(self):
        src = "# reprolint: disable-next=DET001\nimport random\n"
        s = Suppressions.parse(src)
        assert s.is_suppressed("DET001", 2)
        assert not s.is_suppressed("DET001", 1)

    def test_disable_file(self):
        s = Suppressions.parse("# reprolint: disable-file=LAYER001\n\nx = 1\n")
        assert s.is_suppressed("LAYER001", 3)

    def test_disable_all(self):
        s = Suppressions.parse("x = 1.0  # reprolint: disable=all\n")
        assert s.is_suppressed("EXACT001", 1)
        assert s.is_suppressed("FROZEN001", 1)

    def test_comma_separated(self):
        s = Suppressions.parse("x = y  # reprolint: disable=EXACT001, DET001\n")
        assert s.is_suppressed("EXACT001", 1)
        assert s.is_suppressed("DET001", 1)
        assert not s.is_suppressed("LAYER001", 1)

    def test_suppressed_finding_dropped_by_driver(self):
        findings = lint_source(
            "x = 1 / 3  # reprolint: disable=EXACT001\n",
            module="repro.core.fixture",
        )
        assert findings == []


class TestDriver:
    def test_module_override_controls_scope(self):
        src = "x = 1 / 3\n"
        assert lint_source(src, module="repro.core.fixture")
        # Out of EXACT001 scope: the same source is clean.
        assert not lint_source(src, module="repro.viz.fixture")

    def test_syntax_error_reported_as_finding(self):
        (finding,) = lint_source("def broken(:\n", path="bad.py")
        assert finding.rule == PARSE_ERROR_CODE
        assert "does not parse" in finding.message

    def test_findings_sorted_by_location(self):
        src = "y = 2.0\nx = 1 / 3\n"
        findings = lint_source(src, module="repro.core.fixture")
        assert [f.line for f in findings] == sorted(f.line for f in findings)

    def test_lint_paths_counts_files(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "b.py").write_text("y = 2\n")
        report = lint_paths([tmp_path], root=tmp_path)
        assert report.files_checked == 2
        assert report.clean
