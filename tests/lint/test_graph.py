"""IMPORT001: layer DAG, leaf packages, blessed edges, eager cycles."""

from __future__ import annotations

import pathlib

from repro.lint import ProjectIndex, get_rules
from repro.lint.graph import (
    BLESSED_EDGES,
    LAYER_RANKS,
    ImportGraphRule,
    layer_rank,
)

PROJECTS = pathlib.Path(__file__).parent / "fixtures" / "projects"


def check(tree: pathlib.Path):
    (rule,) = get_rules(["IMPORT001"])
    assert isinstance(rule, ImportGraphRule)
    return sorted(rule.check_project(ProjectIndex.build(tree)))


class TestRanks:
    def test_leaves_below_core_below_runner_below_engines(self):
        assert layer_rank("obs") == layer_rank("lint") == 0
        assert layer_rank("obs") < layer_rank("core")
        assert layer_rank("core") < layer_rank("memory")
        assert layer_rank("memory") < layer_rank("runner")
        assert layer_rank("runner") < layer_rank("sim")
        assert layer_rank("sim") < layer_rank("serve")
        assert layer_rank("serve") < layer_rank("cli")

    def test_unknown_packages_default_to_engine_tier(self):
        assert layer_rank("brand_new_pkg") == layer_rank("sim")
        assert "brand_new_pkg" not in LAYER_RANKS

    def test_blessed_edges_mirror_the_runner_boundary(self):
        assert ("repro.runner.backends", "repro.sim.engine") in BLESSED_EDGES
        for importer, _ in BLESSED_EDGES:
            assert importer.startswith("repro.runner.")


class TestBadTree:
    def test_flags_all_violation_kinds(self):
        findings = check(PROJECTS / "graph_bad")
        assert len(findings) == 5, [f.render() for f in findings]
        by_path = {f.path: f.message for f in findings}
        assert "upward import" in by_path["src/repro/core/__init__.py"]
        assert "upward import" in by_path["src/repro/serve/__init__.py"]
        # The arbiter blessing names specific runner modules; any other
        # runner module importing the arbiter grammar is still upward.
        assert "upward import" in by_path["src/repro/runner/sched.py"]
        assert "leaf package" in by_path["src/repro/obs/__init__.py"]
        assert "eager import cycle" in by_path["src/repro/machine/__init__.py"]

    def test_cycle_message_names_both_members(self):
        findings = check(PROJECTS / "graph_bad")
        (cycle,) = [f for f in findings if "cycle" in f.message]
        assert "repro.machine" in cycle.message
        assert "repro.sim" in cycle.message

    def test_findings_carry_the_import_line(self):
        findings = check(PROJECTS / "graph_bad")
        upward = next(f for f in findings if "upward" in f.message)
        assert upward.line == 1  # the `from repro.cli import main` line


class TestCleanTree:
    def test_layered_tree_with_lazy_breakers_is_clean(self):
        # graph_clean exercises: downward imports, blessed upward
        # edges (backends -> sim.engine, job -> sim.arbiter), a
        # TYPE_CHECKING import, and a function-scoped import — all
        # sanctioned.
        assert check(PROJECTS / "graph_clean") == []

    def test_real_repository_holds_the_dag(self):
        root = pathlib.Path(__file__).resolve().parents[2]
        assert check(root) == []
