"""ProjectIndex: the one-pass whole-program substrate for project rules."""

from __future__ import annotations

import pathlib

from repro.lint import ModuleInfo, ProjectIndex
from repro.lint.index import (
    TREE_DIRS,
    ImportEdge,
    iter_tree_files,
    role_for_path,
)

ROOT = pathlib.Path(__file__).resolve().parents[2]
PROJECTS = pathlib.Path(__file__).parent / "fixtures" / "projects"


class TestRoles:
    def test_tree_dirs_cover_roles(self):
        assert set(TREE_DIRS) == {
            "src", "tests", "tools", "benchmarks", "examples",
        }

    def test_role_for_path(self):
        assert role_for_path("src/repro/core/exact.py") == "src"
        assert role_for_path("tests/lint/test_index.py") == "tests"
        assert role_for_path("tools/gen_report.py") == "tools"
        assert role_for_path("benchmarks/bench_backends.py") == "benchmarks"


class TestIterTreeFiles:
    def test_excludes_fixture_corpora_and_pycache(self, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "ok.py").write_text("x = 1\n")
        bad = tmp_path / "src" / "fixtures"
        bad.mkdir()
        (bad / "nope.py").write_text("x = 1\n")
        cache = tmp_path / "src" / "__pycache__"
        cache.mkdir()
        (cache / "ok.cpython-311.py").write_text("x = 1\n")
        files = [p.name for p in iter_tree_files(tmp_path)]
        assert files == ["ok.py"]

    def test_fixture_tree_as_root_still_indexes(self):
        # The exclusion is root-relative: a committed fixture *project*
        # lives under tests/lint/fixtures/ but is a valid root itself.
        files = list(iter_tree_files(PROJECTS / "graph_bad"))
        assert len(files) >= 6

    def test_sorted_and_includes_loose_root_scripts(self, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "b.py").write_text("")
        (tmp_path / "src" / "a.py").write_text("")
        (tmp_path / "setup.py").write_text("")
        names = [p.name for p in iter_tree_files(tmp_path)]
        assert names == ["setup.py", "a.py", "b.py"]


class TestModuleInfo:
    def test_real_tree_builds(self):
        index = ProjectIndex.build(ROOT)
        info = index.by_module["repro.runner.executor"]
        assert isinstance(info, ModuleInfo)
        assert info.role == "src"
        assert info.package == "runner"
        assert not info.is_package
        assert index.files[info.path] is info

    def test_eager_vs_lazy_imports(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (tmp_path / "src" / "repro" / "__init__.py").write_text("")
        (pkg / "mod.py").write_text(
            "import os\n"
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    import json\n"
            "def f():\n"
            "    import sys\n"
            "    return sys\n"
            "class C:\n"
            "    import io\n"
        )
        index = ProjectIndex.build(tmp_path)
        info = index.by_module["repro.core.mod"]
        lazy = {e.origin for e in info.imports if e.lazy}
        eager = {e.origin for e in info.imports if not e.lazy}
        assert "json" in lazy and "sys" in lazy
        # Class bodies execute at import time.
        assert "io" in eager and "os" in eager
        assert isinstance(info.imports[0], ImportEdge)

    def test_symbols_exports_and_mutators(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (tmp_path / "src" / "repro" / "__init__.py").write_text("")
        (pkg / "mod.py").write_text(
            '__all__ = ["f", "X"]\n'
            "X = 1\n"
            "def f():\n"
            "    def inner():\n"
            "        return 0\n"
            "    return inner\n"
            "def g():\n"
            "    global X\n"
            "    X += 1\n"
        )
        index = ProjectIndex.build(tmp_path)
        info = index.by_module["repro.core.mod"]
        assert {"f", "g", "X"} <= set(info.symbols)
        assert info.exports == ("f", "X")
        assert info.export_lines["f"] == 1
        assert "inner" in info.nested_functions
        assert info.global_mutators == frozenset({"g"})

    def test_uses_expand_attribute_prefixes(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (tmp_path / "src" / "repro" / "__init__.py").write_text("")
        (pkg / "mod.py").write_text(
            "from repro.obs import names\n"
            "N = names.FOO.bit_length\n"
        )
        index = ProjectIndex.build(tmp_path)
        uses = index.by_module["repro.core.mod"].uses
        assert "repro.obs.names" in uses
        assert "repro.obs.names.FOO" in uses


class TestQueries:
    def test_resolve_module_strips_symbols(self):
        index = ProjectIndex.build(ROOT)
        info = index.resolve_module("repro.sim.engine.Engine")
        assert info is not None and info.module == "repro.sim.engine"
        assert index.resolve_module("os.path.join") is None

    def test_is_used_elsewhere_via_script_entry(self):
        index = ProjectIndex.build(PROJECTS / "dead_clean")
        assert index.is_used_elsewhere("repro.cli.app", "main")
        assert index.is_used_elsewhere("repro.core.util", "used")

    def test_unreferenced_symbol_is_dead(self):
        index = ProjectIndex.build(PROJECTS / "dead_bad")
        assert not index.is_used_elsewhere("repro.core.util", "unused")
        assert index.is_used_elsewhere("repro.core.util", "used")


class TestDigest:
    def test_content_digest_matches_build_digest(self, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "a.py").write_text("x = 1\n")
        assert (
            ProjectIndex.content_digest(tmp_path)
            == ProjectIndex.build(tmp_path).digest
        )

    def test_digest_changes_with_content(self, tmp_path):
        (tmp_path / "src").mkdir()
        target = tmp_path / "src" / "a.py"
        target.write_text("x = 1\n")
        before = ProjectIndex.content_digest(tmp_path)
        target.write_text("x = 2\n")
        assert ProjectIndex.content_digest(tmp_path) != before

    def test_unparsable_files_still_digest(self, tmp_path):
        # PARSE001 owns the error; the index just skips the file but
        # its bytes still key the cache, so fixing it invalidates.
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "broken.py").write_text("def broken(:\n")
        index = ProjectIndex.build(tmp_path)
        assert index.files == {}
        assert index.digest == ProjectIndex.content_digest(tmp_path)
