"""PAR001 / OBS002 / DEAD001 over the committed fixture project trees."""

from __future__ import annotations

import pathlib

from repro.lint import ProjectIndex, all_rules, get_rules
from repro.lint.apidoc import ApiDocRule
from repro.lint.graph import ImportGraphRule
from repro.lint.rules import (
    ClockBoundaryRule,
    DeadExportRule,
    DeterminismRule,
    ExactnessRule,
    FrozenMutationRule,
    MetricNameRule,
    PoolSafetyRule,
    RunnerLayerRule,
)

PROJECTS = pathlib.Path(__file__).parent / "fixtures" / "projects"


def check(code: str, tree: pathlib.Path):
    (rule,) = get_rules([code])
    return sorted(rule.check_project(ProjectIndex.build(tree)))


class TestRegistryClasses:
    def test_every_rule_class_is_registered_under_its_code(self):
        by_code = {r.code: type(r) for r in all_rules()}
        assert by_code["EXACT001"] is ExactnessRule
        assert by_code["DET001"] is DeterminismRule
        assert by_code["LAYER001"] is RunnerLayerRule
        assert by_code["OBS001"] is ClockBoundaryRule
        assert by_code["FROZEN001"] is FrozenMutationRule
        assert by_code["API001"] is ApiDocRule
        assert by_code["IMPORT001"] is ImportGraphRule
        assert by_code["PAR001"] is PoolSafetyRule
        assert by_code["OBS002"] is MetricNameRule
        assert by_code["DEAD001"] is DeadExportRule


class TestPoolSafety:
    def test_flags_every_hazard_once(self):
        findings = check("PAR001", PROJECTS / "par_bad")
        assert len(findings) == 6, [f.render() for f in findings]
        text = " | ".join(f.message for f in findings)
        assert "lambda" in text
        assert "call-result" in text
        assert "mutates module globals" in text
        assert "nested function" in text
        assert "bound-method" in text
        assert "chaos env literal" in text

    def test_chaos_literal_points_at_its_line(self):
        findings = check("PAR001", PROJECTS / "par_bad")
        chaos = next(f for f in findings if "chaos" in f.message)
        assert chaos.path == "src/repro/runner/hooks.py"
        assert chaos.line == 3

    def test_clean_tree_passes(self):
        # Module-level workers, imported workers, and the chaos env
        # literal living in repro.runner.resilience are all fine.
        assert check("PAR001", PROJECTS / "par_clean") == []

    def test_real_repository_pool_sites_are_safe(self):
        root = pathlib.Path(__file__).resolve().parents[2]
        assert check("PAR001", root) == []


class TestMetricNames:
    def test_flags_inline_unknown_attr_and_unknown_import(self):
        findings = check("OBS002", PROJECTS / "obs2_bad")
        assert len(findings) == 3, [f.render() for f in findings]
        text = " | ".join(f.message for f in findings)
        assert "inline instrumentation name" in text
        assert "names.NOPE" in text
        assert "MISSING" in text

    def test_constants_and_bare_names_pass(self):
        assert check("OBS002", PROJECTS / "obs2_clean") == []

    def test_real_repository_instrumentation_is_clean(self):
        root = pathlib.Path(__file__).resolve().parents[2]
        assert check("OBS002", root) == []


class TestDeadExports:
    def test_flags_only_the_unreferenced_export(self):
        findings = check("DEAD001", PROJECTS / "dead_bad")
        assert len(findings) == 1, [f.render() for f in findings]
        (finding,) = findings
        assert "repro.core.util.unused" in finding.message
        assert finding.path == "src/repro/core/util.py"
        assert finding.line == 1  # the __all__ entry's line

    def test_referenced_and_script_backed_exports_pass(self):
        assert check("DEAD001", PROJECTS / "dead_clean") == []

    def test_package_init_reexport_surfaces_exempt(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (tmp_path / "src" / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text(
            '__all__ = ["nobody_imports_me"]\n'
            "def nobody_imports_me():\n"
            "    return 1\n"
        )
        assert check("DEAD001", tmp_path) == []
