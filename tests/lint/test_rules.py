"""Per-rule fixture tests: each rule catches its bad fixture and passes
the clean one (the acceptance shape: a catch AND a clean pass per rule)."""

from __future__ import annotations

import pathlib

import pytest

from repro.lint import get_rules, lint_file

FIXTURES = pathlib.Path(__file__).parent / "fixtures"

#: (fixture file, rule, expected finding count)
BAD = [
    ("exact_bad.py", "EXACT001", 4),
    ("exact_numpy_bad.py", "EXACT001", 5),
    ("det_bad.py", "DET001", 7),
    ("layer_bad.py", "LAYER001", 6),
    ("frozen_bad.py", "FROZEN001", 2),
    ("obs_bad.py", "OBS001", 4),
]
CLEAN = [
    ("exact_clean.py", "EXACT001"),
    ("exact_numpy_clean.py", "EXACT001"),
    ("det_clean.py", "DET001"),
    ("layer_clean.py", "LAYER001"),
    ("frozen_clean.py", "FROZEN001"),
    ("obs_clean.py", "OBS001"),
]


@pytest.mark.parametrize("fixture,code,count", BAD)
def test_rule_catches_bad_fixture(fixture, code, count):
    findings = lint_file(FIXTURES / fixture, rules=get_rules([code]))
    assert len(findings) == count, [f.render() for f in findings]
    assert {f.rule for f in findings} == {code}


@pytest.mark.parametrize("fixture,code", CLEAN)
def test_rule_passes_clean_fixture(fixture, code):
    findings = lint_file(FIXTURES / fixture, rules=get_rules([code]))
    assert findings == [], [f.render() for f in findings]


@pytest.mark.parametrize("fixture,_code", CLEAN)
def test_clean_fixtures_clean_under_every_rule(fixture, _code):
    findings = lint_file(FIXTURES / fixture)
    assert findings == [], [f.render() for f in findings]


def test_suppressed_fixture_is_clean():
    findings = lint_file(FIXTURES / "suppressed.py")
    assert findings == [], [f.render() for f in findings]


class TestExactDetails:
    def test_flags_point_at_the_right_lines(self):
        findings = lint_file(
            FIXTURES / "exact_bad.py", rules=get_rules(["EXACT001"])
        )
        messages = {f.line: f.message for f in findings}
        assert "float literal" in messages[5]
        assert "true division" in messages[9]
        assert "float() conversion" in messages[13]
        assert "in-place true division" in messages[17]

    def test_numpy_flags_point_at_the_right_lines(self):
        findings = lint_file(
            FIXTURES / "exact_numpy_bad.py", rules=get_rules(["EXACT001"])
        )
        messages = {f.line: f.message for f in findings}
        assert "without an explicit dtype" in messages[7]
        assert "not an exact dtype" in messages[8]
        assert "float dtype numpy.float64" in messages[9]
        assert "numpy.true_divide() produces floats" in messages[14]
        assert "float dtype numpy.float32" in messages[18]

    def test_batchsim_is_exact_clean(self):
        # The SoA core is the very module the NumPy extension guards.
        import pathlib

        src = pathlib.Path(__file__).parents[2] / "src"
        findings = lint_file(
            src / "repro" / "runner" / "batchsim.py",
            rules=get_rules(["EXACT001"]),
            module="repro.runner.batchsim",
        )
        assert findings == [], [f.render() for f in findings]


class TestLayerDetails:
    def test_blessed_modules_exempt(self):
        # The same engine-touching source is legal inside the backend
        # module but flagged elsewhere.
        from repro.lint import lint_source

        src = (
            "from repro.sim.engine import Engine\n"
            "def f(cfg):\n"
            "    return Engine(cfg, [])\n"
        )
        assert not lint_source(src, module="repro.runner.backends")
        assert lint_source(src, module="repro.analysis.new_tool")

    def test_relative_imports_resolve(self):
        from repro.lint import lint_source

        src = (
            "from ..sim.engine import simulate_streams\n"
            "def f(cfg, streams):\n"
            "    return simulate_streams(cfg, streams)\n"
        )
        findings = lint_source(src, module="repro.analysis.new_tool")
        assert [f.rule for f in findings] == ["LAYER001"]


class TestDetDetails:
    def test_seeded_default_rng_via_keyword_ok(self):
        from repro.lint import lint_source

        src = "import numpy as np\nrng = np.random.default_rng(seed=1)\n"
        assert not lint_source(src, module="repro.analysis.x")

    def test_join_over_set_flagged(self):
        from repro.lint import lint_source

        src = "labels = ','.join({'b', 'a'})\n"
        findings = lint_source(src, module="repro.viz.x")
        assert [f.rule for f in findings] == ["DET001"]
