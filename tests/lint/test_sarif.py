"""SARIF 2.1.0 output: structure, schema validation, CLI surface."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.lint import lint_paths, render_sarif, to_sarif_dict
from repro.lint.sarif import SARIF_SCHEMA_URI, SARIF_VERSION

SCHEMA = pathlib.Path(__file__).parent / "fixtures" / "sarif-2.1.0-subset.schema.json"


def make_report(tmp_path: pathlib.Path):
    (tmp_path / "pyproject.toml").write_text("")
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (tmp_path / "src" / "repro" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "bad.py").write_text("import random\n\nx = random.random() / 2\n")
    return lint_paths([tmp_path / "src"], root=tmp_path, cache=None)


class TestStructure:
    def test_document_shape(self, tmp_path):
        doc = to_sarif_dict(make_report(tmp_path))
        assert doc["version"] == SARIF_VERSION == "2.1.0"
        assert doc["$schema"] == SARIF_SCHEMA_URI
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "reprolint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        # The full registry plus the driver's pseudo-rules.
        assert {"EXACT001", "DET001", "IMPORT001", "PAR001", "OBS002",
                "DEAD001", "PARSE001", "SUPPRESS001"} <= rule_ids
        assert run["results"], "expected findings from the bad tree"

    def test_results_carry_locations_and_rule_index(self, tmp_path):
        doc = to_sarif_dict(make_report(tmp_path))
        (run,) = doc["runs"]
        rules = run["tool"]["driver"]["rules"]
        for result in run["results"]:
            assert result["level"] == "error"
            assert result["message"]["text"]
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]
            (loc,) = result["locations"]
            phys = loc["physicalLocation"]
            assert phys["artifactLocation"]["uri"].endswith("bad.py")
            assert "\\" not in phys["artifactLocation"]["uri"]
            assert phys["region"]["startLine"] >= 1
            assert phys["region"]["startColumn"] >= 1

    def test_columns_are_one_based(self, tmp_path):
        report = make_report(tmp_path)
        doc = to_sarif_dict(report)
        by_rule = {
            r["ruleId"]: r["locations"][0]["physicalLocation"]["region"]
            for r in doc["runs"][0]["results"]
        }
        finding = next(f for f in report.findings if f.rule == "EXACT001")
        assert by_rule["EXACT001"]["startColumn"] == finding.col + 1

    def test_render_is_stable_json(self, tmp_path):
        report = make_report(tmp_path)
        assert json.loads(render_sarif(report)) == to_sarif_dict(report)


class TestSchemaValidation:
    def test_validates_against_vendored_subset_schema(self, tmp_path):
        jsonschema = pytest.importorskip("jsonschema")
        schema = json.loads(SCHEMA.read_text())
        doc = to_sarif_dict(make_report(tmp_path))
        jsonschema.validate(doc, schema)

    def test_clean_report_also_validates(self, tmp_path):
        jsonschema = pytest.importorskip("jsonschema")
        (tmp_path / "pyproject.toml").write_text("")
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "ok.py").write_text("X = 1\n")
        report = lint_paths([tmp_path / "src"], root=tmp_path, cache=None)
        assert report.clean
        jsonschema.validate(
            to_sarif_dict(report), json.loads(SCHEMA.read_text())
        )
