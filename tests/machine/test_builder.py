"""Unit tests for repro.machine.builder (generic machines, VP preset)."""

from __future__ import annotations

import pytest

from repro.machine.builder import (
    VP200_SPEC,
    XMP_SPEC,
    MachineSpec,
    build_machine,
    run_on,
)
from repro.machine.instructions import PortKind
from repro.machine.workloads import triad_program, unit_stride_background
from repro.memory.config import MemoryConfig
from repro.memory.layout import CommonBlock


@pytest.fixture
def common():
    return CommonBlock.build([(n, (40000,)) for n in "ABCD"])


class TestMachineSpec:
    def test_xmp_spec_shape(self):
        assert XMP_SPEC.cpus == 2
        assert XMP_SPEC.total_ports == 6
        assert XMP_SPEC.vector_length == 64

    def test_vp_spec_shape(self):
        assert VP200_SPEC.cpus == 1
        assert VP200_SPEC.total_ports == 4
        assert VP200_SPEC.config.banks == 32
        assert VP200_SPEC.vector_length == 256

    def test_validation(self):
        cfg = MemoryConfig(banks=8, bank_cycle=2)
        with pytest.raises(ValueError):
            MachineSpec("x", cfg, (), 64)
        with pytest.raises(ValueError):
            MachineSpec("x", cfg, ((),), 64)
        with pytest.raises(ValueError):
            MachineSpec("x", cfg, ((PortKind.READ,),), 0)
        with pytest.raises(ValueError):
            MachineSpec("x", cfg, ((PortKind.READ,),), 64, chain_latency=-1)


class TestBuildMachine:
    def test_port_indices_dense_across_cpus(self):
        sim = build_machine(XMP_SPEC)
        indices = [s.port.index for c in sim.cpus for s in c.ports]
        assert indices == list(range(6))

    def test_builder_matches_build_xmp(self, common):
        """The declarative XMP spec behaves exactly like the hand-wired
        machine in repro.machine.xmp."""
        from repro.machine.xmp import run_program

        prog = triad_program(2, n=256, common=common)
        via_spec = run_on(XMP_SPEC, prog)
        via_xmp = run_program(
            list(prog), other_cpu_active=False, priority="cyclic"
        )
        assert via_spec.cycles == via_xmp.cycles


class TestRunOn:
    def test_triad_runs_on_vp(self, common):
        prog = triad_program(
            1, n=512, common=common, vector_length=VP200_SPEC.vector_length
        )
        res = run_on(VP200_SPEC, prog)
        assert res.stats.total_grants == 4 * 512

    def test_vp_shrugs_off_stride_16(self, common):
        """16 is only half the VP's 32-bank interleave: r = 2 on the
        X-MP but r = 2... on 32 banks gcd(32,16)=16 ⇒ r=2 as well — use
        stride 8: r=2 on 16 banks (bad), r=4 = n_c on 32 banks (clean)."""
        prog8 = triad_program(
            8, n=256, common=common, vector_length=VP200_SPEC.vector_length
        )
        vp = run_on(VP200_SPEC, prog8)
        xmp = run_on(
            XMP_SPEC,
            triad_program(8, n=256, common=common, vector_length=64),
        )
        assert vp.cycles < xmp.cycles

    def test_background_on_other_cpu(self, common):
        prog = triad_program(1, n=128, common=common)
        res = run_on(
            XMP_SPEC,
            prog,
            background={1: unit_stride_background(16)},
        )
        quiet = run_on(XMP_SPEC, triad_program(1, n=128, common=common))
        assert res.cycles >= quiet.cycles

    def test_background_validation(self, common):
        prog = triad_program(1, n=64, common=common)
        with pytest.raises(ValueError):
            run_on(XMP_SPEC, prog, background={0: unit_stride_background(16)})
        with pytest.raises(ValueError):
            run_on(XMP_SPEC, prog, cpu=5)
