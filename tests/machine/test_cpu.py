"""Unit tests for repro.machine.cpu (issue logic and chaining)."""

from __future__ import annotations

import pytest

from repro.core.stream import AccessStream
from repro.machine.cpu import CpuModel, CpuPort
from repro.machine.instructions import PortKind, VectorInstruction
from repro.sim.port import Port


def make_cpu(chain_latency=0):
    slots = [
        CpuPort(port=Port(index=0, cpu=0), kind=PortKind.READ),
        CpuPort(port=Port(index=1, cpu=0), kind=PortKind.READ),
        CpuPort(port=Port(index=2, cpu=0), kind=PortKind.WRITE),
    ]
    return CpuModel(0, slots, chain_latency=chain_latency)


def load(uid, deps=(), kind=PortKind.READ, length=4):
    return VectorInstruction(
        uid=uid, name=f"i{uid}", kind=kind, base=uid, stride=1,
        length=length, depends_on=tuple(deps),
    )


class TestIssue:
    def test_independent_loads_fill_read_ports(self):
        cpu = make_cpu()
        cpu.load_program([load(0), load(1), load(2)])
        issued = cpu.issue(clock=0, m=16)
        # two read ports -> first two loads issue, third waits
        assert [i.uid for i in issued] == [0, 1]
        assert cpu.issue(clock=1, m=16) == []  # ports still busy

    def test_write_port_only_takes_stores(self):
        cpu = make_cpu()
        cpu.load_program([load(0, kind=PortKind.WRITE)])
        issued = cpu.issue(0, 16)
        assert issued and cpu.ports[2].current_uid == 0
        assert cpu.ports[0].current_uid is None

    def test_dependency_blocks_issue(self):
        cpu = make_cpu()
        cpu.load_program([load(0), load(1, deps=[0], kind=PortKind.WRITE)])
        issued = cpu.issue(0, 16)
        assert [i.uid for i in issued] == [0]
        # dep 0 not complete: store may not issue even though port 2 idle
        assert cpu.issue(1, 16) == []

    def test_chain_latency_delays_dependents(self):
        cpu = make_cpu(chain_latency=3)
        cpu.load_program([load(0, length=1), load(1, deps=[0], kind=PortKind.WRITE)])
        cpu.issue(0, 16)
        # drain the load manually: one grant
        cpu.ports[0].port.advance()
        done = cpu.collect_completions(clock=0)
        assert [i.uid for i in done] == [0]
        assert cpu.issue(1, 16) == []   # 1 < 0 + 3
        assert cpu.issue(2, 16) == []
        assert [i.uid for i in cpu.issue(3, 16)] == [1]

    def test_program_finished(self):
        cpu = make_cpu()
        cpu.load_program([load(0, length=1)])
        assert not cpu.program_finished
        cpu.issue(0, 16)
        cpu.ports[0].port.advance()
        cpu.collect_completions(0)
        assert cpu.program_finished
        assert cpu.last_completion == 0
        assert cpu.issue_clock(0) == 0
        assert cpu.completion_clock(0) == 0

    def test_empty_program_vacuously_finished(self):
        assert make_cpu().program_finished


class TestBackground:
    def test_set_background(self):
        cpu = make_cpu()
        cpu.set_background({0: AccessStream(0, 1), 2: AccessStream(4, 1)}, m=16)
        assert not cpu.ports[0].port.idle
        assert cpu.ports[1].port.idle
        assert not cpu.ports[2].port.idle
        # background never blocks program completion
        assert cpu.program_finished

    def test_background_must_be_infinite(self):
        cpu = make_cpu()
        with pytest.raises(ValueError):
            cpu.set_background({0: AccessStream(0, 1, length=3)}, m=16)


class TestValidation:
    def test_program_validation(self):
        cpu = make_cpu()
        with pytest.raises(ValueError):
            cpu.load_program([load(0), load(0)])  # duplicate uid
        with pytest.raises(ValueError):
            cpu.load_program([load(1, deps=[99])])  # unknown dep

    def test_construction_validation(self):
        with pytest.raises(ValueError):
            CpuModel(0, [], chain_latency=0)
        with pytest.raises(ValueError):
            CpuModel(0, [CpuPort(port=Port(index=0, cpu=1), kind=PortKind.READ)])
        with pytest.raises(ValueError):
            make_cpu(chain_latency=-1)
