"""Unit tests for repro.machine.experiments (dueling triads)."""

from __future__ import annotations

import pytest

from repro.machine.experiments import contention_matrix, dueling_triads


class TestDuelingTriads:
    def test_symmetric_increments_balance(self):
        r = dueling_triads(1, 1, n=256)
        assert r.imbalance < 1.1
        assert r.total_cycles >= max(r.cycles_cpu0, r.cycles_cpu1)

    def test_unit_stride_beats_stride3(self):
        # the INC=3 CPU is barriered by the INC=1 CPU's streams
        r = dueling_triads(1, 3, n=256)
        assert r.cycles_cpu1 > 1.2 * r.cycles_cpu0

    def test_role_swap_mirrors(self):
        a = dueling_triads(1, 3, n=256)
        b = dueling_triads(3, 1, n=256)
        # the loser is whoever runs INC=3, whichever CPU that is
        assert a.cycles_cpu1 > a.cycles_cpu0
        assert b.cycles_cpu0 > b.cycles_cpu1

    def test_conflict_summaries_present(self):
        r = dueling_triads(2, 2, n=128)
        for summary in (r.conflicts_cpu0, r.conflicts_cpu1):
            assert set(summary) == {"bank", "section", "simultaneous"}
            assert all(v >= 0 for v in summary.values())

    def test_shared_common_is_worse_or_equal(self):
        sep = dueling_triads(1, 1, n=256, separate_commons=True)
        shared = dueling_triads(1, 1, n=256, separate_commons=False)
        total_sep = sep.cycles_cpu0 + sep.cycles_cpu1
        total_shared = shared.cycles_cpu0 + shared.cycles_cpu1
        assert total_shared >= 0.9 * total_sep  # at least not magically faster


class TestContentionMatrix:
    def test_grid_shape(self):
        grid = contention_matrix([1, 2], [1, 3], n=128)
        assert set(grid) == {(1, 1), (1, 3), (2, 1), (2, 3)}

    def test_entries_are_duels(self):
        grid = contention_matrix([1], [1], n=128)
        assert grid[(1, 1)].inc0 == 1 and grid[(1, 1)].inc1 == 1
