"""Unit tests for repro.machine.instructions."""

from __future__ import annotations

import pytest

from repro.machine.instructions import (
    VECTOR_LENGTH,
    PortKind,
    VectorInstruction,
)


class TestVectorInstruction:
    def test_stream_projection(self):
        instr = VectorInstruction(
            uid=0, name="LOAD B", kind=PortKind.READ,
            base=17, stride=3, length=5,
        )
        s = instr.stream(16)
        assert s.start_bank == 1
        assert s.stride == 3
        assert s.length == 5
        assert s.label == "LOAD B"

    def test_stride_reduced_mod_banks(self):
        instr = VectorInstruction(
            uid=0, name="x", kind=PortKind.READ, base=0, stride=18, length=4
        )
        assert instr.stream(16).stride == 2

    def test_vector_length_constant(self):
        assert VECTOR_LENGTH == 64

    def test_validation(self):
        with pytest.raises(ValueError):
            VectorInstruction(uid=-1, name="x", kind=PortKind.READ,
                              base=0, stride=1, length=1)
        with pytest.raises(ValueError):
            VectorInstruction(uid=0, name="x", kind=PortKind.READ,
                              base=-1, stride=1, length=1)
        with pytest.raises(ValueError):
            VectorInstruction(uid=0, name="x", kind=PortKind.READ,
                              base=0, stride=0, length=1)
        with pytest.raises(ValueError):
            VectorInstruction(uid=0, name="x", kind=PortKind.READ,
                              base=0, stride=1, length=0)

    def test_frozen(self):
        instr = VectorInstruction(uid=0, name="x", kind=PortKind.READ,
                                  base=0, stride=1, length=1)
        with pytest.raises(AttributeError):
            instr.base = 5  # type: ignore[misc]
