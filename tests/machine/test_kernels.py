"""Unit tests for repro.machine.kernels."""

from __future__ import annotations

import pytest

from repro.core.fortran import ArraySpec
from repro.machine.instructions import PortKind
from repro.machine.kernels import (
    copy_program,
    daxpy_program,
    matrix_sweep_program,
    scale_program,
    sum_program,
)
from repro.machine.xmp import run_program
from repro.memory.layout import CommonBlock


@pytest.fixture
def common():
    return CommonBlock.build(
        [("A", (4096,)), ("B", (4096,)), ("C", (4096,)), ("D", (4096,))]
    )


class TestProgramShapes:
    def test_copy(self, common):
        prog = copy_program(1, n=128, common=common)
        assert len(prog) == 4  # 2 segments x (load + store)
        assert prog[0].kind is PortKind.READ
        assert prog[1].kind is PortKind.WRITE
        assert prog[1].depends_on == (prog[0].uid,)

    def test_scale_same_memory_shape_as_copy(self, common):
        a = copy_program(2, n=64, common=common)
        b = scale_program(2, n=64, common=common)
        assert [(i.kind, i.base, i.stride, i.length) for i in a] == [
            (i.kind, i.base, i.stride, i.length) for i in b
        ]

    def test_sum_is_load_only(self, common):
        prog = sum_program(1, n=128, common=common, src="A")
        assert all(i.kind is PortKind.READ for i in prog)
        assert len(prog) == 2

    def test_daxpy(self, common):
        prog = daxpy_program(1, n=64, common=common)
        kinds = [i.kind for i in prog]
        assert kinds == [PortKind.READ, PortKind.READ, PortKind.WRITE]
        # the store writes the same array the second load reads
        assert prog[2].base == prog[1].base

    def test_strided_addresses(self, common):
        prog = copy_program(3, n=128, common=common)
        seg2_load = prog[2]
        assert seg2_load.base == common["B"].base + 64 * 3
        assert seg2_load.stride == 3

    def test_overflow_detected(self, common):
        with pytest.raises(ValueError):
            copy_program(64, n=128, common=common)  # needs 1+127*64 words

    def test_validation(self, common):
        with pytest.raises(ValueError):
            copy_program(0, n=64, common=common)
        with pytest.raises(ValueError):
            copy_program(1, n=0, common=common)


class TestMatrixSweep:
    def test_column_row_diagonal_strides(self):
        arr = ArraySpec("M", (100, 50), base=0)
        col = matrix_sweep_program(arr, "column")
        row = matrix_sweep_program(arr, "row")
        diag = matrix_sweep_program(arr, "diagonal")
        assert col[0].stride == 1 and col[0].length == 64
        assert row[0].stride == 100
        assert diag[0].stride == 101
        # lengths: column 100, row 50, diagonal 50
        assert sum(i.length for i in col) == 100
        assert sum(i.length for i in row) == 50
        assert sum(i.length for i in diag) == 50

    def test_store_doubles_instructions(self):
        arr = ArraySpec("M", (64, 64))
        ro = matrix_sweep_program(arr, "row")
        rw = matrix_sweep_program(arr, "row", store=True)
        assert len(rw) == 2 * len(ro)
        assert rw[1].kind is PortKind.WRITE

    def test_validation(self):
        arr = ArraySpec("M", (8, 8))
        with pytest.raises(ValueError):
            matrix_sweep_program(arr, "antidiagonal")
        with pytest.raises(ValueError):
            matrix_sweep_program(arr, "row", n=100)
        with pytest.raises(ValueError):
            matrix_sweep_program(ArraySpec("V", (8,)), "row")


class TestKernelsOnTheMachine:
    def test_copy_runs(self, common):
        r = run_program(
            copy_program(1, n=128, common=common), other_cpu_active=False
        )
        assert r.triad_grants == 2 * 128

    def test_daxpy_slower_than_copy(self, common):
        copy = run_program(
            copy_program(1, n=256, common=common), other_cpu_active=False
        )
        daxpy = run_program(
            daxpy_program(1, n=256, common=common), other_cpu_active=False
        )
        assert daxpy.cycles >= copy.cycles

    def test_row_sweep_of_resonant_matrix_is_slow(self):
        # (16, 64) column-major: row stride 16 ≡ 0 mod 16 — one bank.
        bad = ArraySpec("M", (16, 64))
        good = ArraySpec("M", (17, 64))
        slow = run_program(
            matrix_sweep_program(bad, "row"), other_cpu_active=False
        )
        fast = run_program(
            matrix_sweep_program(good, "row"), other_cpu_active=False
        )
        assert slow.cycles > 2 * fast.cycles
