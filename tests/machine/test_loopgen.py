"""Unit tests for repro.machine.loopgen (the loop compiler)."""

from __future__ import annotations

import pytest

from repro.analysis.loopnest import ArrayRef
from repro.machine.instructions import PortKind
from repro.machine.loopgen import compile_loop, word_stride
from repro.machine.xmp import run_program
from repro.memory.layout import CommonBlock


class TestWordStride:
    def test_axis0_is_inc(self):
        assert word_stride(ArrayRef("A", (100,), inc=3)) == 3

    def test_axis1_multiplies_leading_dim(self):
        assert word_stride(ArrayRef("A", (100, 50), axis=1, inc=2)) == 200

    def test_axis2(self):
        assert word_stride(ArrayRef("A", (4, 6, 3), axis=2, inc=1)) == 24


class TestCompileLoop:
    @pytest.fixture
    def common(self):
        return CommonBlock.build([("A", (4096,)), ("B", (4096,))])

    def test_copy_shape(self, common):
        refs = [
            ArrayRef("B", (4096,), inc=1, kind="load"),
            ArrayRef("A", (4096,), inc=1, kind="store"),
        ]
        prog = compile_loop(refs, 128, common)
        assert len(prog) == 4  # 2 segments x (load + store)
        assert prog[0].kind is PortKind.READ
        assert prog[1].kind is PortKind.WRITE
        assert prog[1].depends_on == (prog[0].uid,)

    def test_store_before_load_in_body_still_orders_by_segment(self, common):
        # body order store-first; compiled program still loads first.
        refs = [
            ArrayRef("A", (4096,), inc=1, kind="store"),
            ArrayRef("B", (4096,), inc=1, kind="load"),
        ]
        prog = compile_loop(refs, 64, common)
        assert prog[0].kind is PortKind.READ
        assert prog[1].kind is PortKind.WRITE
        assert prog[1].depends_on == (prog[0].uid,)

    def test_strides_follow_eq33(self):
        common = CommonBlock.build([("M", (16, 512))])
        refs = [ArrayRef("M", (16, 512), axis=1, inc=1, kind="load")]
        prog = compile_loop(refs, 512, common)
        assert prog[0].stride == 16

    def test_start_indices_offset_the_sweep(self):
        common = CommonBlock.build([("M", (16, 512))])
        refs = [ArrayRef("M", (16, 512), axis=1, inc=1, kind="load")]
        prog = compile_loop(refs, 512, common, start_indices={0: 2})
        assert prog[0].base == common["M"].base + 2  # row 3 (0-based 2)

    def test_overrun_detected(self):
        common = CommonBlock.build([("M", (16, 512))])
        refs = [ArrayRef("M", (16, 512), axis=1, inc=1, kind="load")]
        with pytest.raises(ValueError):
            compile_loop(refs, 513, common)

    def test_dims_mismatch_detected(self, common):
        refs = [ArrayRef("A", (8, 8), axis=0, inc=1, kind="load")]
        with pytest.raises(ValueError):
            compile_loop(refs, 8, common)

    def test_validation(self, common):
        with pytest.raises(ValueError):
            compile_loop([], 8, common)
        refs = [ArrayRef("A", (4096,), inc=1)]
        with pytest.raises(ValueError):
            compile_loop(refs, 0, common)
        with pytest.raises(ValueError):
            compile_loop(refs, 8, common, vector_length=0)


class TestAdviseCompileMeasure:
    def test_pipeline_confirms_the_advice(self):
        """The analytic advisor's verdict is borne out by execution."""
        from repro.analysis import analyze_kernel
        from repro.memory import CRAY_XMP_16

        slow_refs = [ArrayRef("M", (16, 256), axis=1, inc=1, kind="load")]
        fast_refs = [ArrayRef("M", (17, 256), axis=1, inc=1, kind="load")]
        slow_report = analyze_kernel(CRAY_XMP_16, slow_refs)
        fast_report = analyze_kernel(CRAY_XMP_16, fast_refs)
        assert not slow_report.clean
        assert fast_report.clean

        slow_prog = compile_loop(
            slow_refs, 256, CommonBlock.build([("M", (16, 256))])
        )
        fast_prog = compile_loop(
            fast_refs, 256, CommonBlock.build([("M", (17, 256))])
        )
        slow = run_program(slow_prog, other_cpu_active=False)
        fast = run_program(fast_prog, other_cpu_active=False)
        assert slow.cycles > 2 * fast.cycles
