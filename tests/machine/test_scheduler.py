"""Unit tests for repro.machine.scheduler."""

from __future__ import annotations

import pytest

from repro.core.stream import AccessStream
from repro.machine.cpu import CpuModel, CpuPort
from repro.machine.instructions import PortKind, VectorInstruction
from repro.machine.scheduler import MachineSimulation
from repro.memory.config import MemoryConfig
from repro.sim.port import Port


def one_cpu_machine(program, m=8, n_c=2, chain=0, start_index=0):
    slots = [
        CpuPort(port=Port(index=start_index, cpu=0), kind=PortKind.READ),
        CpuPort(port=Port(index=start_index + 1, cpu=0), kind=PortKind.WRITE),
    ]
    cpu = CpuModel(0, slots, chain_latency=chain)
    cpu.load_program(program)
    cfg = MemoryConfig(banks=m, bank_cycle=n_c)
    return MachineSimulation(cfg, [cpu])


def instr(uid, kind=PortKind.READ, length=4, deps=()):
    return VectorInstruction(
        uid=uid, name=f"i{uid}", kind=kind, base=0, stride=1,
        length=length, depends_on=tuple(deps),
    )


class TestRunToCompletion:
    def test_single_load_time(self):
        sim = one_cpu_machine([instr(0, length=4)])
        res = sim.run_until_programs_finish()
        # 4 conflict-free unit-stride grants: clocks 0..3; loop exits at 4.
        assert res.cycles == 4
        assert res.stats.total_grants == 4

    def test_load_then_store_chain(self):
        sim = one_cpu_machine(
            [instr(0, length=4), instr(1, kind=PortKind.WRITE, length=4, deps=[0])]
        )
        res = sim.run_until_programs_finish()
        # store issues the clock after the load completes (chain 0):
        # load occupies 0..3, store 4..7.
        assert res.cycles == 8

    def test_chain_latency_adds_gap(self):
        sim = one_cpu_machine(
            [instr(0, length=4),
             instr(1, kind=PortKind.WRITE, length=4, deps=[0])],
            chain=5,
        )
        res = sim.run_until_programs_finish()
        assert res.cycles == 4 + 4 + 4  # completion 3, ready at 8, runs 8..11

    def test_bound_enforced(self):
        sim = one_cpu_machine([instr(0, length=50)])
        with pytest.raises(RuntimeError):
            sim.run_until_programs_finish(max_cycles=10)


class TestMultiCpu:
    def test_background_cpu_never_blocks(self):
        slots0 = [CpuPort(port=Port(index=0, cpu=0), kind=PortKind.READ)]
        cpu0 = CpuModel(0, slots0)
        cpu0.load_program([instr(0, length=4)])
        slots1 = [CpuPort(port=Port(index=1, cpu=1), kind=PortKind.READ)]
        cpu1 = CpuModel(1, slots1)
        cfg = MemoryConfig(banks=8, bank_cycle=2)
        sim = MachineSimulation(cfg, [cpu0, cpu1])
        cpu1.set_background({0: AccessStream(4, 1)}, m=8)
        res = sim.run_until_programs_finish()
        assert res.cycles == 4
        # the background stream really ran
        assert res.stats.ports[1].grants == 4


class TestWiring:
    def test_port_index_density_checked(self):
        with pytest.raises(ValueError):
            one_cpu_machine([instr(0)], start_index=3)

    def test_needs_cpus(self):
        cfg = MemoryConfig(banks=8, bank_cycle=2)
        with pytest.raises(ValueError):
            MachineSimulation(cfg, [])
