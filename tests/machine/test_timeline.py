"""Unit tests for repro.machine.timeline."""

from __future__ import annotations

import pytest

from repro.machine.timeline import port_utilisation, render_timeline
from repro.machine.workloads import triad_program
from repro.machine.xmp import build_xmp
from repro.memory.layout import triad_common_block


@pytest.fixture
def finished_cpu():
    machine = build_xmp()
    cpu = machine.cpus[0]
    cpu.load_program(triad_program(1, n=128, common=triad_common_block()))
    machine.run_until_programs_finish()
    return cpu


class TestCpuTimeline:
    def test_rows_cover_all_instructions(self, finished_cpu):
        rows = finished_cpu.timeline()
        assert len(rows) == 8  # 2 segments x 4 instructions

    def test_rows_sorted_by_issue(self, finished_cpu):
        rows = finished_cpu.timeline()
        issues = [issue for _, _, issue, _ in rows]
        assert issues == sorted(issues)

    def test_completion_after_issue(self, finished_cpu):
        for name, port, issue, done in finished_cpu.timeline():
            assert done >= issue, name

    def test_loads_on_read_ports_stores_on_write(self, finished_cpu):
        for name, port, *_ in finished_cpu.timeline():
            if name.startswith("LOAD"):
                assert port in (0, 1), name
            else:
                assert port == 2, name

    def test_store_starts_after_its_loads(self, finished_cpu):
        rows = finished_cpu.timeline()
        seg0_loads = [r for r in rows if "[0:64" in r[0] and r[0].startswith("LOAD")]
        seg0_store = next(r for r in rows if r[0].startswith("STORE A[0:64"))
        assert seg0_store[2] > max(r[3] for r in seg0_loads)

    def test_port_of(self, finished_cpu):
        assert finished_cpu.port_of(0) in (0, 1)  # first load

    def test_empty_program(self):
        machine = build_xmp()
        assert machine.cpus[0].timeline() == []


class TestRenderTimeline:
    def test_render_layout(self, finished_cpu):
        text = render_timeline(finished_cpu, width=40)
        lines = text.splitlines()
        assert lines[0].startswith("clocks 0..")
        assert len(lines) == 1 + 8
        assert all("|" in l for l in lines[1:])

    def test_max_rows_truncation(self, finished_cpu):
        text = render_timeline(finished_cpu, width=40, max_rows=3)
        assert "more instructions" in text

    def test_empty(self):
        machine = build_xmp()
        assert "no retired" in render_timeline(machine.cpus[0])

    def test_validation(self, finished_cpu):
        with pytest.raises(ValueError):
            render_timeline(finished_cpu, width=0)


class TestPortUtilisation:
    def test_fractions_in_unit_interval(self, finished_cpu):
        util = port_utilisation(finished_cpu)
        assert set(util) == {0, 1, 2}
        for v in util.values():
            assert 0 < v <= 1

    def test_read_ports_busier_than_write(self, finished_cpu):
        # 3 loads per segment on 2 read ports vs 1 store on the write port
        util = port_utilisation(finished_cpu)
        assert util[0] + util[1] > 2 * util[2]

    def test_empty(self):
        machine = build_xmp()
        assert port_utilisation(machine.cpus[0]) == {}
