"""Unit tests for repro.machine.workloads (triad program generation)."""

from __future__ import annotations

import pytest

from repro.machine.instructions import PortKind
from repro.machine.workloads import (
    TRIAD_IDIM,
    TRIAD_N,
    strided_background,
    triad_program,
    unit_stride_background,
)
from repro.memory.layout import triad_common_block


class TestTriadProgram:
    def test_segment_count(self):
        prog = triad_program(1)
        # 1024 elements / 64 per segment = 16 segments × 4 instructions.
        assert len(prog) == 16 * 4

    def test_segment_structure(self):
        prog = triad_program(2)
        seg0 = prog[:4]
        kinds = [i.kind for i in seg0]
        assert kinds == [
            PortKind.READ, PortKind.READ, PortKind.READ, PortKind.WRITE,
        ]
        store = seg0[3]
        assert store.depends_on == (0, 1, 2)
        # loads are independent
        assert all(i.depends_on == () for i in seg0[:3])

    def test_addresses_follow_inc(self):
        common = triad_common_block()
        prog = triad_program(3, common=common)
        load_b_seg1 = prog[4]  # second segment's B load
        assert load_b_seg1.base == common["B"].base + 64 * 3
        assert load_b_seg1.stride == 3
        assert load_b_seg1.length == 64

    def test_start_banks_one_apart(self):
        prog = triad_program(1)
        first_banks = [i.stream(16).start_bank for i in prog[:4]]
        # loads B, C, D then store A
        assert first_banks == [1, 2, 3, 0]

    def test_ragged_tail_segment(self):
        prog = triad_program(1, n=100)  # 64 + 36
        assert len(prog) == 8
        assert prog[4].length == 36

    def test_overflow_detection(self):
        with pytest.raises(ValueError):
            triad_program(17)  # 1 + 1023*17 > IDIM

    def test_validation(self):
        with pytest.raises(ValueError):
            triad_program(0)
        with pytest.raises(ValueError):
            triad_program(1, n=0)
        with pytest.raises(ValueError):
            triad_program(1, vector_length=0)

    def test_constants(self):
        assert TRIAD_N == 1024
        assert TRIAD_IDIM == 16 * 1024 + 1


class TestBackgrounds:
    def test_unit_stride_default_stagger(self):
        bg = unit_stride_background(16)
        assert set(bg) == {0, 1, 2}
        assert [bg[i].start_bank for i in range(3)] == [0, 5, 10]
        assert all(s.stride == 1 and s.is_infinite for s in bg.values())

    def test_explicit_stagger(self):
        bg = unit_stride_background(16, ports=2, stagger=4)
        assert [bg[i].start_bank for i in range(2)] == [0, 4]

    def test_validation(self):
        with pytest.raises(ValueError):
            unit_stride_background(16, ports=0)

    def test_strided_background(self):
        bg = strided_background(16, [1, 2], starts=[3, 20])
        assert bg[0].stride == 1 and bg[0].start_bank == 3
        assert bg[1].stride == 2 and bg[1].start_bank == 4

    def test_strided_background_validation(self):
        with pytest.raises(ValueError):
            strided_background(16, [1, 2], starts=[0])
