"""Unit tests for repro.machine.xmp (machine assembly + triad driver)."""

from __future__ import annotations

import pytest

from repro.machine.instructions import PortKind
from repro.machine.xmp import XMP_CONFIG, build_xmp, run_triad, triad_sweep


class TestAssembly:
    def test_config_shape(self):
        assert XMP_CONFIG.banks == 16
        assert XMP_CONFIG.bank_cycle == 4
        assert XMP_CONFIG.effective_sections == 4

    def test_two_cpus_three_ports_each(self):
        sim = build_xmp()
        assert len(sim.cpus) == 2
        for cpu in sim.cpus:
            kinds = [slot.kind for slot in cpu.ports]
            assert kinds == [PortKind.READ, PortKind.READ, PortKind.WRITE]
        # global port indices dense 0..5
        indices = [s.port.index for c in sim.cpus for s in c.ports]
        assert indices == list(range(6))

    def test_cpu_ids(self):
        sim = build_xmp()
        assert [c.cpu_id for c in sim.cpus] == [0, 1]


class TestRunTriad:
    def test_dedicated_run_basic(self):
        r = run_triad(1, other_cpu_active=False, n=128)
        assert r.inc == 1
        assert not r.other_cpu_active
        # 128 elements: 2 segments; must take at least 128 clocks for
        # grants on the store port alone.
        assert r.cycles > 128
        assert r.triad_grants == 4 * 128  # 3 loads + 1 store per element

    def test_contended_slower_than_dedicated(self):
        a = run_triad(2, other_cpu_active=True, n=128)
        b = run_triad(2, other_cpu_active=False, n=128)
        assert a.cycles > b.cycles
        assert a.other_cpu_active and not b.other_cpu_active

    def test_conflict_counts_nonnegative_and_consistent(self):
        r = run_triad(3, other_cpu_active=True, n=128)
        assert r.bank_conflicts >= 0
        assert r.bank_stall_cycles >= r.bank_conflicts
        assert r.section_stall_cycles >= r.section_conflicts
        assert r.simultaneous_stall_cycles >= r.simultaneous_conflicts

    def test_self_conflicting_stride_is_slow(self):
        # INC=16 ≡ 0 mod 16: every stream hammers one bank (r=1 < n_c).
        slow = run_triad(16, other_cpu_active=False, n=128)
        fast = run_triad(1, other_cpu_active=False, n=128)
        assert slow.cycles > 2 * fast.cycles

    def test_clocks_per_element(self):
        r = run_triad(1, other_cpu_active=False)
        assert r.clocks_per_element == r.cycles / 1024


class TestTriadSweep:
    def test_sweep_shape(self):
        rows = triad_sweep(range(1, 4), other_cpu_active=False, n=128)
        assert [r.inc for r in rows] == [1, 2, 3]

    def test_sweep_kwargs_passthrough(self):
        rows = triad_sweep([1], other_cpu_active=True, n=64)
        assert rows[0].other_cpu_active
