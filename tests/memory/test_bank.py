"""Unit tests for repro.memory.bank."""

from __future__ import annotations

import pytest

from repro.memory.bank import BankArray


class TestLifecycle:
    def test_initially_free(self):
        banks = BankArray(4, 3)
        assert all(banks.is_free(j) for j in range(4))
        assert banks.active_banks() == []

    def test_grant_holds_nc_clocks(self):
        banks = BankArray(4, 3)
        banks.grant(1)
        assert not banks.is_free(1)
        assert banks.remaining(1) == 3
        banks.tick()
        assert banks.remaining(1) == 2
        banks.tick()
        assert not banks.is_free(1)
        banks.tick()
        assert banks.is_free(1)  # free exactly after n_c ticks

    def test_grant_to_active_bank_is_a_bug(self):
        banks = BankArray(4, 3)
        banks.grant(0)
        with pytest.raises(RuntimeError):
            banks.grant(0)

    def test_regrant_after_recovery(self):
        banks = BankArray(2, 2)
        banks.grant(0)
        banks.tick()
        banks.tick()
        banks.grant(0)  # no error
        assert banks.remaining(0) == 2

    def test_nc_one_frees_next_clock(self):
        banks = BankArray(2, 1)
        banks.grant(0)
        assert not banks.is_free(0)
        banks.tick()
        assert banks.is_free(0)

    def test_independent_banks(self):
        banks = BankArray(3, 4)
        banks.grant(0)
        banks.grant(2)
        assert banks.is_free(1)
        assert banks.active_banks() == [0, 2]


class TestSnapshots:
    def test_roundtrip(self):
        banks = BankArray(4, 3)
        banks.grant(2)
        banks.tick()
        snap = banks.snapshot()
        assert snap == (0, 0, 2, 0)
        banks.tick()
        banks.restore(snap)
        assert banks.remaining(2) == 2

    def test_snapshot_is_hashable(self):
        banks = BankArray(4, 3)
        hash(banks.snapshot())

    def test_restore_validates_size(self):
        banks = BankArray(4, 3)
        with pytest.raises(ValueError):
            banks.restore((0, 0))

    def test_reset(self):
        banks = BankArray(4, 3)
        banks.grant(0)
        banks.reset()
        assert banks.active_banks() == []


class TestValidation:
    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            BankArray(0, 3)
        with pytest.raises(ValueError):
            BankArray(4, 0)
