"""Unit tests for repro.memory.config."""

from __future__ import annotations

import pytest

from repro.memory.config import (
    CRAY_XMP_16,
    FIG2_CONFIG,
    FIG7_CONFIG,
    FIG8_CONFIG,
    MemoryConfig,
)


class TestConstruction:
    def test_defaults_unsectioned(self):
        c = MemoryConfig(banks=12, bank_cycle=3)
        assert c.effective_sections == 12
        assert not c.sectioned
        assert c.banks_per_section == 1

    def test_paper_aliases(self):
        c = MemoryConfig(banks=12, bank_cycle=3)
        assert c.m == 12 and c.n_c == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryConfig(banks=0, bank_cycle=3)
        with pytest.raises(ValueError):
            MemoryConfig(banks=12, bank_cycle=0)
        with pytest.raises(ValueError):
            MemoryConfig(banks=12, bank_cycle=3, sections=5)  # 5 ∤ 12
        with pytest.raises(ValueError):
            MemoryConfig(banks=12, bank_cycle=3, sections=24)
        with pytest.raises(ValueError):
            MemoryConfig(banks=12, bank_cycle=3, sections=0)
        with pytest.raises(ValueError):
            MemoryConfig(banks=12, bank_cycle=3, section_mapping="random")

    def test_frozen(self):
        with pytest.raises(AttributeError):
            FIG2_CONFIG.banks = 8  # type: ignore[misc]


class TestMappings:
    def test_bank_of_address(self):
        c = MemoryConfig(banks=16, bank_cycle=4)
        assert c.bank_of_address(0) == 0
        assert c.bank_of_address(16 * 1024 + 1) == 1
        with pytest.raises(ValueError):
            c.bank_of_address(-1)

    def test_cyclic_section_of_bank(self):
        c = MemoryConfig(banks=12, bank_cycle=3, sections=3)
        assert [c.section_of_bank(j) for j in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_consecutive_section_of_bank(self):
        c = MemoryConfig(
            banks=12, bank_cycle=3, sections=3, section_mapping="consecutive"
        )
        assert [c.section_of_bank(j) for j in (0, 3, 4, 7, 8, 11)] == [
            0, 0, 1, 1, 2, 2,
        ]

    def test_section_of_bank_bounds(self):
        with pytest.raises(ValueError):
            FIG8_CONFIG.section_of_bank(12)


class TestHelpers:
    def test_with_sections(self):
        c = FIG8_CONFIG.with_sections(3, "consecutive")
        assert c.section_mapping == "consecutive"
        assert c.banks == FIG8_CONFIG.banks
        # original untouched
        assert FIG8_CONFIG.section_mapping == "cyclic"

    def test_with_sections_keeps_mapping_by_default(self):
        c = FIG7_CONFIG.with_sections(6)
        assert c.section_mapping == "cyclic"
        assert c.effective_sections == 6

    def test_describe(self):
        assert "m=16" in CRAY_XMP_16.describe()
        assert "n_c=4" in CRAY_XMP_16.describe()


class TestPresets:
    def test_xmp_shape(self):
        assert CRAY_XMP_16.banks == 16
        assert CRAY_XMP_16.bank_cycle == 4
        assert CRAY_XMP_16.effective_sections == 4
        assert CRAY_XMP_16.sectioned

    def test_fig_presets(self):
        assert (FIG2_CONFIG.banks, FIG2_CONFIG.bank_cycle) == (12, 3)
        assert FIG7_CONFIG.effective_sections == 2
        assert FIG8_CONFIG.effective_sections == 3
