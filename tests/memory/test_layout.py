"""Unit tests for repro.memory.layout (COMMON blocks)."""

from __future__ import annotations

import pytest

from repro.core.fortran import ArraySpec
from repro.memory.layout import CommonBlock, triad_common_block


class TestBuild:
    def test_storage_association(self):
        blk = CommonBlock.build([("A", (10,)), ("B", (5,)), ("C", (2, 3))])
        assert blk["A"].base == 0
        assert blk["B"].base == 10
        assert blk["C"].base == 15
        assert blk.size == 21

    def test_nonzero_base(self):
        blk = CommonBlock.build([("A", (4,))], base=100)
        assert blk["A"].base == 100

    def test_getitem_unknown(self):
        blk = CommonBlock.build([("A", (4,))])
        with pytest.raises(KeyError):
            blk["Z"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            CommonBlock.build([("A", (4,)), ("A", (4,))])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CommonBlock(arrays=(), base=0)

    def test_mismatched_bases_rejected(self):
        a = ArraySpec("A", (10,), base=0)
        b = ArraySpec("B", (5,), base=11)  # should be 10
        with pytest.raises(ValueError):
            CommonBlock(arrays=(a, b))


class TestTriadLayout:
    def test_one_bank_apart(self):
        """Section IV: IDIM = 16*1024+1 puts A,B,C,D one bank apart."""
        blk = triad_common_block()
        banks = blk.start_banks(16)
        assert banks == {"A": 0, "B": 1, "C": 2, "D": 3}

    def test_other_idim_changes_spacing(self):
        blk = triad_common_block(idim=16 * 1024)  # multiple of 16
        banks = blk.start_banks(16)
        assert banks == {"A": 0, "B": 0, "C": 0, "D": 0}

    def test_sizes(self):
        blk = triad_common_block()
        assert blk.size == 4 * (16 * 1024 + 1)
        assert all(
            blk[n].size == 16 * 1024 + 1 for n in ("A", "B", "C", "D")
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            triad_common_block(idim=0)
