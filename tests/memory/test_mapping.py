"""Unit tests for repro.memory.mapping (interleave + skew)."""

from __future__ import annotations

import pytest

from repro.memory.mapping import InterleavedMapping, LinearSkewMapping


class TestInterleaved:
    def test_low_order_bits(self):
        m = InterleavedMapping(16)
        assert m.bank_of(0) == 0
        assert m.bank_of(17) == 1
        assert m.cell_of(17) == 1
        assert m.locate(35) == (3, 2)

    def test_stream_banks_constant_distance(self):
        m = InterleavedMapping(12)
        banks = m.stream_banks(base=3, stride=7, count=5)
        assert banks == [3, 10, 5, 0, 7]

    def test_validation(self):
        with pytest.raises(ValueError):
            InterleavedMapping(0)
        m = InterleavedMapping(4)
        with pytest.raises(ValueError):
            m.bank_of(-1)
        with pytest.raises(ValueError):
            m.stream_banks(0, 1, -1)


class TestLinearSkew:
    def test_zero_skew_is_interleave(self):
        plain = InterleavedMapping(8)
        skew0 = LinearSkewMapping(8, skew=0)
        for a in range(64):
            assert plain.bank_of(a) == skew0.bank_of(a)

    def test_row_rotation(self):
        m = LinearSkewMapping(4, skew=1)
        # row 0: banks 0,1,2,3; row 1 rotated by 1: 1,2,3,0; ...
        assert [m.bank_of(a) for a in range(4)] == [0, 1, 2, 3]
        assert [m.bank_of(a) for a in range(4, 8)] == [1, 2, 3, 0]
        assert [m.bank_of(a) for a in range(8, 12)] == [2, 3, 0, 1]

    def test_each_row_is_a_permutation(self):
        m = LinearSkewMapping(8, skew=3)
        for row in range(8):
            banks = {m.bank_of(row * 8 + col) for col in range(8)}
            assert banks == set(range(8))

    def test_column_sweep_distributes(self):
        # The headline property: stride = m (a column of an m-wide
        # array) hits all banks instead of one.
        m = LinearSkewMapping(8, skew=1)
        banks = m.stream_banks(base=0, stride=8, count=8)
        assert set(banks) == set(range(8))
        plain = InterleavedMapping(8)
        assert set(plain.stream_banks(0, 8, 8)) == {0}

    def test_skew_reduced_mod_m(self):
        a = LinearSkewMapping(8, skew=9)
        b = LinearSkewMapping(8, skew=1)
        for addr in range(64):
            assert a.bank_of(addr) == b.bank_of(addr)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearSkewMapping(8, skew=-1)
        m = LinearSkewMapping(8, 1)
        with pytest.raises(ValueError):
            m.bank_of(-1)
        with pytest.raises(ValueError):
            m.effective_stride_period(0)


class TestXorSkew:
    def test_requires_power_of_two(self):
        from repro.memory.mapping import XorSkewMapping

        with pytest.raises(ValueError):
            XorSkewMapping(12)
        with pytest.raises(ValueError):
            XorSkewMapping(16, mult=4)  # even multiplier

    def test_rows_are_permutations(self):
        from repro.memory.mapping import XorSkewMapping

        m = XorSkewMapping(8, mult=3)
        for row in range(8):
            banks = {m.bank_of(row * 8 + col) for col in range(8)}
            assert banks == set(range(8))

    def test_column_stride_scatters(self):
        from repro.memory.mapping import XorSkewMapping

        m = XorSkewMapping(16)
        banks = m.stream_banks(0, 16, 16)
        assert set(banks) == set(range(16))

    def test_negative_address_rejected(self):
        from repro.memory.mapping import XorSkewMapping

        with pytest.raises(ValueError):
            XorSkewMapping(8).bank_of(-1)
