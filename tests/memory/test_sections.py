"""Unit tests for repro.memory.sections (bank-to-section maps)."""

from __future__ import annotations

import pytest

from repro.memory.config import MemoryConfig
from repro.memory.sections import (
    ConsecutiveSectionMap,
    CyclicSectionMap,
    section_map_for,
)


class TestCyclicMap:
    def test_striping(self):
        smap = CyclicSectionMap(12, 3)
        assert [smap.section_of(j) for j in range(12)] == [
            0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2,
        ]

    def test_banks_in_section(self):
        smap = CyclicSectionMap(12, 3)
        assert smap.banks_in_section(1) == [1, 4, 7, 10]

    def test_name(self):
        assert CyclicSectionMap(12, 3).name == "cyclic"


class TestConsecutiveMap:
    def test_grouping(self):
        smap = ConsecutiveSectionMap(12, 3)
        assert [smap.section_of(j) for j in range(12)] == [
            0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2,
        ]

    def test_banks_in_section(self):
        smap = ConsecutiveSectionMap(12, 3)
        assert smap.banks_in_section(2) == [8, 9, 10, 11]

    def test_unit_stride_stays_in_section(self):
        # The property that defeats the linked conflict (Fig. 9): a
        # d = 1 stream changes section only every m/s accesses.
        smap = ConsecutiveSectionMap(12, 3)
        sections = [smap.section_of(j % 12) for j in range(12)]
        changes = sum(
            1 for a, b in zip(sections, sections[1:]) if a != b
        )
        assert changes == 2  # vs 11 for the cyclic map

    def test_name(self):
        assert ConsecutiveSectionMap(12, 3).name == "consecutive"


class TestSharedBehaviour:
    @pytest.mark.parametrize("cls", [CyclicSectionMap, ConsecutiveSectionMap])
    def test_partition(self, cls):
        smap = cls(12, 4)
        seen: set[int] = set()
        for k in range(4):
            banks = smap.banks_in_section(k)
            assert len(banks) == 3  # m/s each
            seen.update(banks)
        assert seen == set(range(12))

    @pytest.mark.parametrize("cls", [CyclicSectionMap, ConsecutiveSectionMap])
    def test_validation(self, cls):
        with pytest.raises(ValueError):
            cls(12, 5)
        with pytest.raises(ValueError):
            cls(12, 0)
        with pytest.raises(ValueError):
            cls(12, 24)
        smap = cls(12, 3)
        with pytest.raises(ValueError):
            smap.section_of(12)
        with pytest.raises(ValueError):
            smap.banks_in_section(3)


class TestFactory:
    def test_cyclic_from_config(self):
        cfg = MemoryConfig(banks=12, bank_cycle=3, sections=3)
        assert isinstance(section_map_for(cfg), CyclicSectionMap)

    def test_consecutive_from_config(self):
        cfg = MemoryConfig(
            banks=12, bank_cycle=3, sections=3, section_mapping="consecutive"
        )
        assert isinstance(section_map_for(cfg), ConsecutiveSectionMap)

    def test_matches_config_shortcut(self):
        # MemoryConfig.section_of_bank and the map must agree everywhere.
        for mapping in ("cyclic", "consecutive"):
            cfg = MemoryConfig(
                banks=12, bank_cycle=3, sections=4, section_mapping=mapping
            )
            smap = section_map_for(cfg)
            for j in range(12):
                assert smap.section_of(j) == cfg.section_of_bank(j)
