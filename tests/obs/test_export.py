"""Exporters: text / JSON / Prometheus rendering of a seeded registry."""

from __future__ import annotations

import json

from repro.obs import (
    MetricsRegistry,
    capture_spans,
    load_json,
    render_json,
    render_prometheus,
    render_spans,
    span,
)


def seeded_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("runner.auto.dispatch", tier="analytic").inc(7)
    reg.counter("runner.auto.dispatch", tier="fastsim").inc(3)
    reg.gauge("runner.executor.memo_size").set(42)
    h = reg.histogram("runner.fastsim.steady_lam", buckets=(2, 8))
    h.observe(1)
    h.observe(5)
    h.observe(100)
    return reg


class TestText:
    def test_one_line_per_series(self):
        from repro.obs import render_text

        text = render_text(seeded_registry())
        assert "runner.auto.dispatch{tier=analytic}" in text
        assert "runner.auto.dispatch{tier=fastsim}" in text
        assert "runner.executor.memo_size" in text
        # exact sum/count mean, never a float
        assert "count=3 sum=106 mean=106/3" in text

    def test_empty_registry(self):
        from repro.obs import render_text

        assert render_text(MetricsRegistry()) == "(no metrics recorded)"


class TestJson:
    def test_roundtrip_equality(self):
        reg = seeded_registry()
        back = load_json(render_json(reg))
        assert back.snapshot() == reg.snapshot()

    def test_document_shape(self):
        doc = json.loads(render_json(seeded_registry()))
        assert doc["version"] == 1
        kinds = {m["kind"] for m in doc["metrics"]}
        assert kinds == {"counter", "gauge", "histogram"}
        # every value in the document is an exact int, never a float
        def ints_only(obj):
            if isinstance(obj, bool):
                raise AssertionError("bool in snapshot")
            if isinstance(obj, float):
                raise AssertionError(f"float {obj!r} in snapshot")
            if isinstance(obj, dict):
                for v in obj.values():
                    ints_only(v)
            elif isinstance(obj, list):
                for v in obj:
                    ints_only(v)
        ints_only(doc)


class TestPrometheus:
    def test_exposition_format(self):
        text = render_prometheus(seeded_registry())
        lines = text.splitlines()
        assert "# TYPE runner_auto_dispatch counter" in lines
        assert 'runner_auto_dispatch{tier="analytic"} 7' in lines
        assert 'runner_auto_dispatch{tier="fastsim"} 3' in lines
        assert "# TYPE runner_executor_memo_size gauge" in lines
        assert "runner_executor_memo_size 42" in lines
        assert "# TYPE runner_fastsim_steady_lam histogram" in lines
        # cumulative le-buckets with an +Inf overflow series
        assert 'runner_fastsim_steady_lam_bucket{le="2"} 1' in lines
        assert 'runner_fastsim_steady_lam_bucket{le="8"} 2' in lines
        assert 'runner_fastsim_steady_lam_bucket{le="+Inf"} 3' in lines
        assert "runner_fastsim_steady_lam_sum 106" in lines
        assert "runner_fastsim_steady_lam_count 3" in lines

    def test_type_header_emitted_once_per_family(self):
        text = render_prometheus(seeded_registry())
        assert text.count("# TYPE runner_auto_dispatch counter") == 1

    def test_empty_registry(self):
        assert render_prometheus(MetricsRegistry()) == ""


class TestSpans:
    def test_tree_rendering(self):
        with capture_spans() as rec:
            with span("outer", jobs=2):
                with span("inner"):
                    pass
        text = render_spans(rec)
        lines = text.splitlines()
        assert lines[0] == "span trace"
        outer = next(ln for ln in lines if ln.startswith("outer"))
        inner = next(ln for ln in lines if ln.lstrip().startswith("inner"))
        assert "outer{jobs=2}" in outer
        assert inner.startswith("  ")  # indented one level
        assert "ms" in outer and "ms" in inner

    def test_empty_recorder(self):
        from repro.obs import TraceRecorder

        assert render_spans(TraceRecorder()) == "(no spans recorded)"

    def test_duration_formatting_is_integer_math(self):
        from repro.obs.export import _format_ns

        assert _format_ns(0) == "0.000 ms"
        assert _format_ns(1_234_567) == "1.234 ms"
        assert _format_ns(999) == "0.000 ms"
        assert _format_ns(12_000_000_000) == "12000.000 ms"
