"""The instrumentation contract: emitted names == declared == documented."""

from __future__ import annotations

import pathlib

from repro.memory.config import MemoryConfig
from repro.obs import (
    METRIC_CONTRACT,
    SPAN_CONTRACT,
    Histogram,
    active_metrics,
    active_trace,
    capture_metrics,
    capture_spans,
    metric_names,
    span_names,
)
from repro.obs import names as obs_names
from repro.runner import SimJob, SweepExecutor, jobs_for_offsets

DOCS = pathlib.Path(__file__).resolve().parents[2] / "docs"
CFG = MemoryConfig(banks=12, bank_cycle=3)


def _jobs() -> list[SimJob]:
    return jobs_for_offsets(CFG, 1, 7, range(12))


class TestContractDeclaration:
    def test_constants_match_contract_rows(self):
        assert metric_names() == {spec.name for spec in METRIC_CONTRACT}
        assert span_names() == {spec.name for spec in SPAN_CONTRACT}

    def test_contracts_are_sorted_and_unique(self):
        names = [spec.name for spec in METRIC_CONTRACT]
        assert names == sorted(set(names))
        snames = [spec.name for spec in SPAN_CONTRACT]
        assert snames == sorted(set(snames))

    def test_every_metric_name_documented(self):
        doc = (DOCS / "OBSERVABILITY.md").read_text()
        for spec in METRIC_CONTRACT:
            assert f"`{spec.name}`" in doc, f"{spec.name} not documented"

    def test_every_span_name_documented(self):
        doc = (DOCS / "OBSERVABILITY.md").read_text()
        for spec in SPAN_CONTRACT:
            assert f"`{spec.name}`" in doc, f"{spec.name} not documented"

    def test_documented_label_keys_match_contract(self):
        doc = (DOCS / "OBSERVABILITY.md").read_text()
        for spec in METRIC_CONTRACT + SPAN_CONTRACT:
            for label in spec.labels:
                assert f"`{label}`" in doc, (
                    f"label {label!r} of {spec.name} not documented"
                )


class TestEmittedNames:
    def test_instrumented_sweep_emits_only_contract_names(self):
        ex = SweepExecutor(backend="auto", max_memo=5)
        with capture_metrics() as reg, capture_spans() as rec:
            ex.run_many(_jobs())
            ex.run_many(_jobs())  # memo hits
        emitted = {m.name for m in reg.collect()}
        assert emitted, "instrumented sweep recorded nothing"
        assert emitted <= metric_names(), emitted - metric_names()
        spans_seen = {s.name for s in rec.finished()}
        assert spans_seen
        assert spans_seen <= span_names(), spans_seen - span_names()

    def test_reference_backend_emits_engine_counters(self):
        ex = SweepExecutor(backend="reference")
        with capture_metrics() as reg:
            ex.run_one(SimJob.from_specs(CFG, [(0, 1), (5, 7)]))
        jobs = reg.get(obs_names.ENGINE_JOBS)
        clocks = reg.get(obs_names.ENGINE_CLOCKS)
        detections = reg.get(obs_names.ENGINE_STEADY_DETECTIONS)
        assert jobs is not None and jobs.value == 1
        assert clocks is not None and clocks.value > 0
        assert detections is not None and detections.value == 1
        assert {m.name for m in reg.collect()} <= metric_names()


class TestExecutorCounters:
    def test_deltas_and_cache_hits(self):
        ex = SweepExecutor(backend="auto")
        ex.run_many(_jobs())  # warm up before metrics are enabled
        pre = ex.stats.as_dict()
        with capture_metrics() as reg:
            ex.run_many(_jobs())  # all memo hits
        post = ex.stats.as_dict()
        hits = reg.get(obs_names.EXECUTOR_MEMO_HITS)
        assert hits is not None
        # only the delta since enablement is published
        assert hits.value == post["hits"] - pre["hits"] == 12
        assert reg.get(obs_names.EXECUTOR_EXECUTED) is None  # zero delta
        submitted = reg.get(obs_names.EXECUTOR_SUBMITTED)
        assert submitted is not None and submitted.value == 12
        size = reg.get(obs_names.EXECUTOR_MEMO_SIZE)
        assert size is not None and size.value == len(ex)

    def test_eviction_counter(self):
        with capture_metrics() as reg:
            ex = SweepExecutor(backend="auto", max_memo=3)
            ex.run_many(_jobs())
        ev = reg.get(obs_names.EXECUTOR_MEMO_EVICTIONS)
        assert ev is not None
        assert ev.value == ex.stats.evictions > 0

    def test_chunk_histogram_on_inline_path(self):
        with capture_metrics() as reg:
            ex = SweepExecutor(backend="auto")
            ex.run_many(_jobs())
        hist = reg.get(obs_names.EXECUTOR_CHUNK_JOBS)
        assert isinstance(hist, Histogram)
        assert hist.count == 1  # one inline chunk
        assert hist.sum == ex.stats.executed

    def test_disk_loaded_counter(self, tmp_path):
        path = tmp_path / "cache.json"
        with SweepExecutor(backend="auto", cache_path=path) as ex:
            ex.run_many(_jobs())
            entries = len(ex)
        with capture_metrics() as reg:
            SweepExecutor(backend="auto", cache_path=path)
        loaded = reg.get(obs_names.EXECUTOR_DISK_LOADED)
        assert loaded is not None and loaded.value == entries


class TestTierDispatch:
    def test_auto_dispatch_split(self):
        with capture_metrics() as reg:
            ex = SweepExecutor(backend="auto")
            ex.run_many(_jobs())
        analytic = reg.get(obs_names.AUTO_DISPATCH, tier="analytic")
        fastsim = reg.get(obs_names.AUTO_DISPATCH, tier="fastsim")
        total = (analytic.value if analytic else 0) + (
            fastsim.value if fastsim else 0
        )
        assert total == ex.stats.executed
        # fastsim fallbacks show up in the steady-cycle histograms
        if fastsim is not None:
            mu = reg.get(obs_names.FASTSIM_STEADY_MU)
            lam = reg.get(obs_names.FASTSIM_STEADY_LAM)
            assert isinstance(mu, Histogram) and mu.count == fastsim.value
            assert isinstance(lam, Histogram) and lam.count == fastsim.value

    def test_analytic_decided_theorem_labels(self):
        with capture_metrics() as reg:
            ex = SweepExecutor(backend="auto")
            # single stream: Theorem 1 territory
            ex.run_one(SimJob.from_specs(CFG, [(0, 1)]))
        decided = reg.get(obs_names.ANALYTIC_DECIDED, theorem="t1-single")
        assert decided is not None and decided.value == 1


class TestNoopDefault:
    def test_disabled_run_records_nothing_and_matches(self):
        assert active_metrics() is None
        assert active_trace() is None
        ex = SweepExecutor(backend="auto")
        plain = ex.run_many(_jobs())
        with capture_metrics():
            instrumented = SweepExecutor(backend="auto").run_many(_jobs())
        # instrumentation cannot perturb the exact results
        assert [o.bandwidth for o in plain] == [
            o.bandwidth for o in instrumented
        ]
        assert [o.grants for o in plain] == [o.grants for o in instrumented]

    def test_registry_untouched_outside_capture(self):
        with capture_metrics() as reg:
            pass  # nothing ran while enabled
        before = reg.snapshot()
        SweepExecutor(backend="auto").run_many(_jobs())
        assert reg.snapshot() == before


class TestArbiterMetrics:
    def test_policy_jobs_counted_on_the_fast_path(self):
        from repro.runner import run

        job = SimJob.from_specs(
            CFG, [(0, 1), (0, 1)], cpus=(0, 1), regulate=["stream:0=1/4"]
        )
        with capture_metrics() as reg:
            run(job, backend="fast")
        counted = reg.get(obs_names.ARBITER_POLICY_JOBS, kind="regulated")
        assert counted is not None and counted.value == 1

    def test_reference_engine_counts_regulator_vetoes(self):
        from repro.runner import run

        job = SimJob.from_specs(
            CFG, [(0, 1), (0, 1)], cpus=(0, 1), regulate=["stream=1/4"]
        )
        with capture_metrics() as reg:
            run(job, backend="reference")
        vetoes = reg.get(obs_names.ARBITER_VETOES)
        assert vetoes is not None and vetoes.value > 0
