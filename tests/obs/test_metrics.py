"""MetricsRegistry semantics: instruments, identity, snapshots, switch."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    active_metrics,
    capture_metrics,
    disable_metrics,
    enable_metrics,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter("x").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("x")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7


class TestHistogram:
    def test_default_buckets_are_powers_of_two(self):
        assert DEFAULT_BUCKETS[0] == 1
        assert DEFAULT_BUCKETS[-1] == 1 << 20
        assert all(b == 1 << i for i, b in enumerate(DEFAULT_BUCKETS))

    def test_observation_lands_in_first_covering_bucket(self):
        h = Histogram("x", buckets=(2, 4, 8))
        for v in (1, 2, 3, 8, 9):
            h.observe(v)
        assert h.counts == [2, 1, 1, 1]  # <=2, <=4, <=8, overflow
        assert h.count == 5
        assert h.sum == 23

    def test_exact_mean_as_fraction(self):
        h = Histogram("x", buckets=(10,))
        h.observe(1)
        h.observe(2)
        assert Fraction(h.sum, h.count) == Fraction(3, 2)

    def test_cumulative_counts(self):
        h = Histogram("x", buckets=(2, 4))
        for v in (1, 3, 100):
            h.observe(v)
        assert h.cumulative_counts() == [1, 2, 3]

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("x", buckets=(4, 2))

    def test_rejects_duplicate_bounds(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("x", buckets=(2, 2))

    def test_rejects_non_integer_bounds(self):
        with pytest.raises(TypeError, match="exact integers"):
            Histogram("x", buckets=(1, 2.5))

    def test_rejects_empty_bounds(self):
        with pytest.raises(ValueError, match="at least one"):
            Histogram("x", buckets=())


class TestRegistry:
    def test_same_identity_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a", tier="x") is reg.counter("a", tier="x")
        assert reg.counter("a", tier="x") is not reg.counter("a", tier="y")

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        assert reg.counter("a", p=1, q=2) is reg.counter("a", q=2, p=1)

    def test_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("a")
        with pytest.raises(TypeError, match="already registered"):
            reg.histogram("a")

    def test_collect_is_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.counter("a", z="2")
        reg.counter("a", z="1")
        idents = [(m.name, m.labels) for m in reg.collect()]
        assert idents == sorted(idents)

    def test_get_and_len(self):
        reg = MetricsRegistry()
        assert reg.get("a") is None
        c = reg.counter("a")
        assert reg.get("a") is c
        assert len(reg) == 1

    def test_snapshot_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("jobs", tier="fast").inc(3)
        reg.gauge("memo").set(7)
        h = reg.histogram("lam", buckets=(2, 8))
        h.observe(1)
        h.observe(100)
        back = MetricsRegistry.from_snapshot(reg.snapshot())
        assert back.snapshot() == reg.snapshot()
        hist = back.get("lam")
        assert isinstance(hist, Histogram)
        assert hist.counts == [1, 0, 1]
        assert hist.sum == 101

    def test_snapshot_version_guard(self):
        with pytest.raises(ValueError, match="version"):
            MetricsRegistry.from_snapshot({"version": 99, "metrics": []})


class TestSwitch:
    def test_disabled_by_default(self):
        assert active_metrics() is None

    def test_enable_disable(self):
        try:
            reg = enable_metrics()
            assert active_metrics() is reg
        finally:
            disable_metrics()
        assert active_metrics() is None

    def test_capture_restores_previous_state(self):
        outer = MetricsRegistry()
        with capture_metrics(outer):
            with capture_metrics() as inner:
                assert active_metrics() is inner
                assert inner is not outer
            assert active_metrics() is outer
        assert active_metrics() is None
