"""Tracing spans: the null-span fast path, nesting, recorder semantics."""

from __future__ import annotations

import pytest

from repro.obs import (
    TraceRecorder,
    active_trace,
    capture_spans,
    disable_tracing,
    enable_tracing,
    span,
)
from repro.obs.trace import _NULL_SPAN


class TestDisabledPath:
    def test_disabled_by_default(self):
        assert active_trace() is None

    def test_span_returns_the_shared_null_singleton(self):
        # No allocation when tracing is off: every call hands back the
        # same do-nothing context manager.
        a = span("anything", jobs=3)
        b = span("other")
        assert a is b is _NULL_SPAN
        with a:
            pass  # must be usable


class TestRecording:
    def test_spans_record_name_labels_and_timing(self):
        with capture_spans() as rec:
            with span("executor.run_many", jobs=4):
                pass
        (s,) = rec.finished()
        assert s.name == "executor.run_many"
        assert s.labels == (("jobs", "4"),)
        assert s.duration_ns >= 0
        assert s.depth == 0

    def test_nesting_depth(self):
        with capture_spans() as rec:
            with span("outer"):
                with span("inner"):
                    pass
            with span("second"):
                pass
        depths = {s.name: s.depth for s in rec.finished()}
        assert depths == {"outer": 0, "inner": 1, "second": 0}

    def test_open_span_raises_on_duration_and_is_not_finished(self):
        rec = TraceRecorder()
        live = rec.span("open")
        live.__enter__()
        assert rec.finished() == []
        with pytest.raises(ValueError, match="not finished"):
            rec.spans[0].duration_ns
        live.__exit__(None, None, None)
        assert len(rec.finished()) == 1

    def test_as_dict(self):
        with capture_spans() as rec:
            with span("x", a=1):
                pass
        d = rec.finished()[0].as_dict()
        assert d["name"] == "x"
        assert d["labels"] == {"a": "1"}
        assert d["depth"] == 0
        assert d["duration_ns"] >= 0

    def test_enable_disable(self):
        try:
            rec = enable_tracing()
            assert active_trace() is rec
        finally:
            disable_tracing()
        assert active_trace() is None

    def test_capture_restores_previous_state(self):
        outer = TraceRecorder()
        with capture_spans(outer):
            with capture_spans() as inner:
                assert active_trace() is inner
            assert active_trace() is outer
        assert active_trace() is None
