"""The analytic tier is never wrong and never overclaims.

Two complementary checks license Tier A of the execution pipeline:

* a randomized ``(m, n_c, d1, d2, start)`` grid (hypothesis) where every
  *decided* job must come back bit-identical — bandwidth, period,
  per-port grants, transient, total cycles — from the solver, the fast
  backend and the reference engine;
* an exhaustive small-``m`` sweep asserting the same identity on every
  decided job and that undecided jobs *report* undecided (the strict
  ``analytic`` backend raises instead of guessing).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.config import FIG3_CONFIG, MemoryConfig
from repro.runner import SimJob, run
from repro.runner.analytic import AnalyticBackend, solve

#: The outcome fields that must agree exactly (``backend`` necessarily
#: differs; ``result`` is reference-engine-only by design).
FIELDS = ("bandwidth", "period", "grants", "steady_start", "cycles")


def outcome_tuple(out):
    return tuple(getattr(out, f) for f in FIELDS)


@st.composite
def grid_jobs(draw):
    m = draw(st.integers(2, 20))
    n_c = draw(st.integers(1, 5))
    n = draw(st.integers(1, 2))
    streams = tuple(
        (draw(st.integers(0, m - 1)), draw(st.integers(0, m - 1)))
        for _ in range(n)
    )
    cpus = tuple(draw(st.integers(0, 1)) for _ in range(n))
    sections = draw(
        st.sampled_from([None] + [s for s in range(1, m + 1) if m % s == 0])
    )
    priority = draw(
        st.sampled_from(["fixed", "cyclic", "lru", "block-cyclic:2"])
    )
    intra = draw(st.sampled_from([None, "fixed"]))
    return SimJob(
        banks=m,
        bank_cycle=n_c,
        streams=streams,
        cpus=cpus,
        sections=sections,
        priority=priority,
        intra_priority=intra,
    )


class TestRandomizedGrid:
    @given(job=grid_jobs())
    @settings(max_examples=150, deadline=None)
    def test_decided_jobs_bit_identical_to_both_backends(self, job):
        analytic = solve(job)
        if analytic is None:
            return  # undecided: nothing claimed, nothing to check
        assert analytic.backend == "analytic"
        fast = run(job, backend="fast")
        ref = run(job, backend="reference")
        assert outcome_tuple(analytic) == outcome_tuple(fast)
        assert outcome_tuple(analytic) == outcome_tuple(ref)

    @given(job=grid_jobs())
    @settings(max_examples=60, deadline=None)
    def test_auto_backend_identical_to_reference(self, job):
        auto = run(job, backend="auto")
        ref = run(job, backend="reference")
        assert outcome_tuple(auto) == outcome_tuple(ref)


def exhaustive_single_jobs():
    for m in (2, 3, 4, 6, 8, 12, 13):
        for n_c in (1, 2, 3, 6):
            for d in range(m):
                for prio in ("fixed", "cyclic", "lru", "block-cyclic:2"):
                    yield SimJob.from_specs(
                        MemoryConfig(banks=m, bank_cycle=n_c),
                        [(0, d)],
                        priority=prio,
                    )


def exhaustive_pair_jobs():
    for m, n_c in ((4, 2), (6, 2), (8, 3), (9, 2)):
        cfg = MemoryConfig(banks=m, bank_cycle=n_c)
        for d1 in range(1, m):
            for d2 in range(1, m):
                for b2 in range(m):
                    yield SimJob.from_specs(cfg, [(0, d1), (b2, d2)])


class TestExhaustiveSmallM:
    def test_single_streams_never_wrong(self):
        decided = total = 0
        for job in exhaustive_single_jobs():
            total += 1
            out = solve(job)
            if out is None:
                # Overclaim check: the only undecided single-stream jobs
                # are the stateful block-cyclic arbitrations.
                assert job.priority.startswith("block-cyclic")
                continue
            decided += 1
            assert outcome_tuple(out) == outcome_tuple(run(job, backend="fast"))
        assert decided and decided < total

    def test_pairs_never_wrong(self):
        decided = total = 0
        for job in exhaustive_pair_jobs():
            total += 1
            out = solve(job)
            if out is None:
                continue
            decided += 1
            assert outcome_tuple(out) == outcome_tuple(run(job, backend="fast"))
        assert decided and decided < total

    def test_decided_pairs_match_reference_engine(self):
        # The fast backend is property-tested bit-identical to the
        # reference engine elsewhere; re-check the decided subset (much
        # smaller) against the reference engine directly anyway.
        checked = 0
        for job in exhaustive_pair_jobs():
            if solve(job) is None:
                continue
            assert outcome_tuple(solve(job)) == outcome_tuple(
                run(job, backend="reference")
            )
            checked += 1
        assert checked


class TestNeverOverclaims:
    def test_barrier_pair_reports_undecided(self):
        # Fig 3's (1,6) pair is a barrier regime: bandwidth is pinned by
        # T5/T6 but the transient is not, so the full outcome tuple must
        # come from simulation.
        job = SimJob.from_specs(FIG3_CONFIG, [(0, 1), (0, 6)])
        assert solve(job) is None
        with pytest.raises(ValueError, match="not analytically decided"):
            AnalyticBackend().run(job)

    def test_stateful_arbitration_reports_undecided(self):
        job = SimJob.from_specs(
            MemoryConfig(banks=12, bank_cycle=3),
            [(0, 1), (3, 7)],
            priority="cyclic",  # conflict-free starts, but stateful rule
        )
        assert solve(job) is None

    def test_fixed_horizon_and_trace_report_undecided(self):
        cfg = MemoryConfig(banks=12, bank_cycle=3)
        fixed = SimJob.from_specs(cfg, [(0, 1)], steady=False, cycles=50)
        trace = SimJob.from_specs(
            cfg, [(0, 1)], steady=False, cycles=50, trace=True
        )
        assert solve(fixed) is None and solve(trace) is None

    def test_cycle_bound_defers_to_simulator(self):
        # mu + lam exceeds max_cycles: the simulator would raise its
        # "no cyclic state" error, so the solver must not answer.
        job = SimJob.from_specs(
            MemoryConfig(banks=12, bank_cycle=3), [(0, 1)], max_cycles=5
        )
        assert solve(job) is None

    def test_sectioned_same_cpu_pair_reports_undecided(self):
        # Two streams on one CPU with fewer sections than banks: path
        # conflicts no longer coincide with bank conflicts, outside
        # every certificate's hypotheses.
        job = SimJob.from_specs(
            MemoryConfig(banks=12, bank_cycle=3, sections=4),
            [(0, 1), (3, 7)],
            cpus=(0, 0),
        )
        assert solve(job) is None
