"""Arbiter policies give bit-identical outcomes on every backend.

The policy refactor replaces the engine's two-rule grant loop; these
properties license it.  Randomized jobs with the full policy surface —
every priority rule, wfq ranking, per-stream and per-bank token-bucket
regulation — must produce exactly the same steady outcome on the
reference engine, the scalar fast core (Brent detection, so policy
snapshot/restore sits inside the steady-cycle loop) and the batch
backend's policy partition.  The analytic tier must stay never-wrong:
a decided outcome for a regulated job is bit-identical to simulation,
and non-vacuous policies are always honestly undecided.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runner import SimJob, run
from repro.runner.analytic import solve
from repro.runner.backends import get_backend
from repro.sim.arbiter import regulation_is_vacuous


@st.composite
def regulations(draw, n, m):
    """A valid regulation tuple for ``n`` streams on ``m`` banks."""
    specs: list[str] = []
    budget = st.tuples(st.integers(1, 4), st.integers(1, 6))
    stream_mode = draw(st.sampled_from(["none", "uniform", "indexed"]))
    if stream_mode == "uniform":
        rate, window = draw(budget)
        specs.append(f"stream={rate}/{window}")
    elif stream_mode == "indexed":
        for idx in sorted(draw(st.sets(st.integers(0, n - 1), max_size=n))):
            rate, window = draw(budget)
            specs.append(f"stream:{idx}={rate}/{window}")
    bank_mode = draw(st.sampled_from(["none", "uniform", "indexed"]))
    if bank_mode == "uniform":
        rate, window = draw(budget)
        specs.append(f"bank={rate}/{window}")
    elif bank_mode == "indexed":
        for idx in sorted(
            draw(st.sets(st.integers(0, m - 1), max_size=3))
        ):
            rate, window = draw(budget)
            specs.append(f"bank:{idx}={rate}/{window}")
    return tuple(specs)


@st.composite
def policy_jobs(draw):
    m = draw(st.integers(2, 12))
    n_c = draw(st.integers(1, 4))
    sections = draw(
        st.sampled_from([None] + [s for s in range(1, m + 1) if m % s == 0])
    )
    mapping = (
        draw(st.sampled_from(["cyclic", "consecutive"]))
        if sections is not None
        else "cyclic"
    )
    n = draw(st.integers(1, 3))
    streams = tuple(
        (draw(st.integers(0, m - 1)), draw(st.integers(0, m - 1)))
        for _ in range(n)
    )
    cpus = tuple(draw(st.integers(0, 1)) for _ in range(n))
    priority = draw(
        st.sampled_from(["fixed", "cyclic", "lru", "block-cyclic:2"])
    )
    intra = draw(st.sampled_from([None, "fixed", "cyclic", "lru"]))
    if draw(st.booleans()):
        arbiter = "wfq:" + ",".join(
            str(draw(st.integers(1, 4))) for _ in range(n)
        )
    else:
        arbiter = None
    regulate = draw(regulations(n, m))
    return SimJob(
        banks=m,
        bank_cycle=n_c,
        streams=streams,
        cpus=cpus,
        sections=sections,
        section_mapping=mapping,
        priority=priority,
        intra_priority=intra,
        arbiter=arbiter,
        regulate=regulate,
    )


def _assert_same(a, b):
    assert b.bandwidth == a.bandwidth
    assert b.period == a.period
    assert b.grants == a.grants
    assert b.steady_start == a.steady_start


class TestPolicyBackendEquivalence:
    @given(job=policy_jobs())
    @settings(max_examples=100, deadline=None)
    def test_reference_fast_batch_bit_identical(self, job):
        ref = run(job, backend="reference")
        fast = run(job, backend="fast")
        _assert_same(ref, fast)
        (batch,) = get_backend("batch").run_batch([job])
        _assert_same(ref, batch)
        assert batch.backend == "batch"

    @given(job=policy_jobs(), horizon=st.integers(1, 80))
    @settings(max_examples=50, deadline=None)
    def test_fixed_horizon_grants_identical(self, job, horizon):
        from dataclasses import replace

        job = replace(job, steady=False, cycles=horizon)
        ref = run(job, backend="reference")
        fast = run(job, backend="fast")
        assert fast.grants == ref.grants
        assert fast.bandwidth == ref.bandwidth

    @given(job=policy_jobs())
    @settings(max_examples=60, deadline=None)
    def test_canonical_policy_job_has_identical_outcome(self, job):
        original = run(job)
        canonical = run(job.canonical())
        _assert_same(original, canonical)


class TestLRUInsideSteadyDetection:
    """LRU's snapshot/restore runs inside Brent's steady-cycle loop;
    the restore bugfix is what makes the fast path agree with the
    reference engine on every start (the pre-fix restore inverted
    grant order when the detector restored early in a run)."""

    @given(
        m=st.integers(2, 10),
        n_c=st.integers(1, 4),
        d1=st.integers(0, 9),
        d2=st.integers(0, 9),
        off=st.integers(0, 9),
        regulated=st.booleans(),
    )
    @settings(max_examples=80, deadline=None)
    def test_lru_jobs_agree_across_backends(
        self, m, n_c, d1, d2, off, regulated
    ):
        job = SimJob(
            banks=m,
            bank_cycle=n_c,
            streams=((0, d1 % m), (off % m, d2 % m)),
            cpus=(0, 1),
            priority="lru",
            intra_priority="lru",
            regulate=("stream=1/2",) if regulated else (),
        )
        ref = run(job, backend="reference")
        fast = run(job, backend="fast")
        _assert_same(ref, fast)


class TestAnalyticNeverWrongUnderPolicy:
    @given(job=policy_jobs())
    @settings(max_examples=100, deadline=None)
    def test_decided_regulated_outcomes_match_simulation(self, job):
        out = solve(job)
        if out is None:
            return  # honestly undecided — always allowed
        # wfq free-runs its slot and non-vacuous buckets veto: neither
        # may ever be decided.
        assert job.arbiter is None
        assert not job.regulate or regulation_is_vacuous(job.regulate)
        _assert_same(run(job, backend="fast"), out)
