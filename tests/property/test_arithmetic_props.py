"""Property-based tests for the number-theoretic core."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import arithmetic as ar
from repro.core.stream import AccessStream

banks = st.integers(min_value=1, max_value=64)
strides = st.integers(min_value=0, max_value=200)


class TestReturnNumberProperties:
    @given(m=banks, d=strides)
    def test_divides_m(self, m, d):
        """Theorem 1 corollary: r | m always."""
        assert m % ar.return_number(m, d % m) == 0

    @given(m=banks, d=strides)
    def test_matches_brute_force(self, m, d):
        """r is literally the first repetition index of the bank walk."""
        d %= m
        seen = set()
        k = 0
        bank = 0
        while bank not in seen:
            seen.add(bank)
            k += 1
            bank = (k * d) % m
        assert ar.return_number(m, d) == k

    @given(m=banks, d=strides, b=strides)
    def test_access_set_size(self, m, d, b):
        assert len(ar.access_set(m, d % m, b % m)) == ar.return_number(m, d % m)

    @given(m=banks, d=strides, b=strides, k=st.integers(0, 500))
    def test_periodicity(self, m, d, b, k):
        """bank(k + r) == bank(k)."""
        s = AccessStream(start_bank=b % m, stride=d % m)
        r = s.return_number(m)
        assert s.bank_at(k, m) == s.bank_at(k + r, m)


class TestEgcdProperties:
    @given(a=st.integers(0, 10**6), b=st.integers(0, 10**6))
    def test_bezout_identity(self, a, b):
        g, x, y = ar.egcd(a, b)
        assert g == math.gcd(a, b)
        assert a * x + b * y == g

    @given(m=st.integers(2, 500), data=st.data())
    def test_modinv_inverts(self, m, data):
        a = data.draw(
            st.sampled_from([k for k in range(1, m) if math.gcd(k, m) == 1])
        )
        assert (a * ar.modinv(a, m)) % m == 1


class TestDivisorsProperties:
    @given(n=st.integers(1, 5000))
    def test_all_and_only_divisors(self, n):
        ds = ar.divisors(n)
        assert ds == sorted(ds)
        assert all(n % d == 0 for d in ds)
        assert len(ds) == sum(1 for k in range(1, n + 1) if n % k == 0)


class TestProgressionProperties:
    @given(m=st.integers(1, 64), step=st.integers(0, 200))
    def test_minimal_residue_is_min_of_nonzero_orbit(self, m, step):
        got = ar.minimal_positive_residue(m, step)
        values = {(k * step) % m for k in range(1, 2 * m + 1)}
        positive = {v for v in values if v > 0}
        if positive:
            assert got == min(positive)
        else:
            assert got == m  # gcd(m, 0) = m convention

    @given(m=st.integers(1, 64), step=st.integers(0, 200))
    def test_residues_are_multiples_of_gcd(self, m, step):
        g = math.gcd(m, step % m)
        rs = ar.progression_residues(m, step)
        if g == 0:
            assert rs == frozenset({0})
        else:
            assert rs == frozenset(range(0, m, g))


class TestFirstCommonIndexProperties:
    @given(
        m=st.integers(2, 24),
        d1=st.integers(0, 23),
        d2=st.integers(0, 23),
        b2=st.integers(0, 23),
    )
    @settings(max_examples=60)
    def test_agrees_with_set_intersection(self, m, d1, d2, b2):
        hit = ar.first_common_index(m, d1 % m, 0, d2 % m, b2 % m)
        z1 = ar.access_set(m, d1 % m, 0)
        z2 = ar.access_set(m, d2 % m, b2 % m)
        if z1 & z2:
            assert hit is not None
            k1, k2 = hit
            assert (k1 * (d1 % m)) % m == (b2 % m + k2 * (d2 % m)) % m
        else:
            assert hit is None
