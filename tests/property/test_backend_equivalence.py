"""The fast backend is a bit-exact replacement for the reference engine.

Randomized jobs — memory shape, sections (both mappings), stream count,
starts, strides, CPU placement, priority rules — run through both
backends; every component of the steady outcome must match exactly.
This is the cross-check that licenses using the fast path anywhere the
reference engine was used.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runner import SimJob, run


@st.composite
def sim_jobs(draw):
    m = draw(st.integers(2, 20))
    n_c = draw(st.integers(1, 5))
    sections = draw(
        st.sampled_from([None] + [s for s in range(1, m + 1) if m % s == 0])
    )
    mapping = (
        draw(st.sampled_from(["cyclic", "consecutive"]))
        if sections is not None
        else "cyclic"
    )
    n = draw(st.integers(1, 4))
    streams = tuple(
        (draw(st.integers(0, m - 1)), draw(st.integers(0, m - 1)))
        for _ in range(n)
    )
    cpus = tuple(draw(st.integers(0, 1)) for _ in range(n))
    priority = draw(
        st.sampled_from(["fixed", "cyclic", "lru", "block-cyclic:2"])
    )
    intra = draw(st.sampled_from([None, "fixed", "cyclic"]))
    return SimJob(
        banks=m,
        bank_cycle=n_c,
        streams=streams,
        cpus=cpus,
        sections=sections,
        section_mapping=mapping,
        priority=priority,
        intra_priority=intra,
    )


class TestBackendEquivalence:
    @given(job=sim_jobs())
    @settings(max_examples=120, deadline=None)
    def test_steady_outcomes_bit_identical(self, job):
        ref = run(job, backend="reference")
        fast = run(job, backend="fast")
        assert fast.bandwidth == ref.bandwidth
        assert fast.period == ref.period
        assert fast.grants == ref.grants
        assert fast.steady_start == ref.steady_start

    @given(job=sim_jobs(), horizon=st.integers(1, 120))
    @settings(max_examples=60, deadline=None)
    def test_fixed_horizon_grants_identical(self, job, horizon):
        job = SimJob(
            banks=job.banks,
            bank_cycle=job.bank_cycle,
            streams=job.streams,
            cpus=job.cpus,
            sections=job.sections,
            section_mapping=job.section_mapping,
            priority=job.priority,
            intra_priority=job.intra_priority,
            steady=False,
            cycles=horizon,
        )
        ref = run(job, backend="reference")
        fast = run(job, backend="fast")
        assert fast.grants == ref.grants
        assert fast.bandwidth == ref.bandwidth


class TestCanonicalizationSoundness:
    @given(job=sim_jobs())
    @settings(max_examples=80, deadline=None)
    def test_canonical_job_has_identical_outcome(self, job):
        """The Appendix isomorphism must preserve the whole steady outcome.

        The renumbering is a bijection on memory states commuting with
        the arbitration step, so per-port grants, period *and* transient
        length carry over exactly — this is what makes the canonical job
        a sound cache identity.
        """
        original = run(job)
        canonical = run(job.canonical())
        assert canonical.bandwidth == original.bandwidth
        assert canonical.period == original.period
        assert canonical.grants == original.grants
        assert canonical.steady_start == original.steady_start

    @given(
        job=sim_jobs(),
        k=st.integers(1, 19),
        c=st.integers(0, 19),
    )
    @settings(max_examples=80, deadline=None)
    def test_explicit_isomorphs_share_cache_key(self, job, k, c):
        from math import gcd

        m = job.banks
        if gcd(k, m) != 1 or not job._renumbering_safe():
            return
        mapped = SimJob(
            banks=m,
            bank_cycle=job.bank_cycle,
            streams=tuple(
                ((b * k + c) % m, (d * k) % m) for b, d in job.streams
            ),
            cpus=job.cpus,
            sections=job.sections,
            section_mapping=job.section_mapping,
            priority=job.priority,
            intra_priority=job.intra_priority,
        )
        assert mapped.cache_key() == job.cache_key()
