"""The batch SoA core is a bit-exact replacement for the fast engine.

Randomized *populations* — mixes of the paper's regimes (conflict-free
pairs, barrier pairs, linked-conflict strides, multi-section multi-port
jobs) — run through ``BatchBackend.run_batch`` in one lockstep call and
through the scalar fast backend one job at a time; every component of
every per-job ``SimOutcome`` must match exactly, and a population whose
jobs exhaust ``max_cycles`` must raise the very same ``RuntimeError``
the scalar engine raises.  This is the cross-check that licenses
routing sweeps through the lockstep core.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runner import SimJob, get_backend


@st.composite
def conflict_free_jobs(draw):
    """Fig. 2 shape: strides sharing a factor with m, disjoint starts."""
    m = draw(st.sampled_from([4, 8, 12, 16]))
    d = draw(st.sampled_from([x for x in (2, 4) if x < m]))
    b2 = draw(st.integers(1, d - 1)) if d > 1 else 0
    return SimJob(
        banks=m,
        bank_cycle=draw(st.integers(1, 4)),
        streams=((0, d), (b2 % m, d)),
        cpus=(0, 1),
        priority=draw(st.sampled_from(["fixed", "cyclic"])),
    )


@st.composite
def barrier_jobs(draw):
    """Fig. 3 shape: equal strides, same start bank — the barrier."""
    m = draw(st.sampled_from([4, 8, 13, 16]))
    d = draw(st.integers(1, m - 1))
    return SimJob(
        banks=m,
        bank_cycle=draw(st.integers(2, 4)),
        streams=((0, d), (0, d)),
        cpus=(0, 1),
        priority=draw(st.sampled_from(["fixed", "cyclic", "lru"])),
    )


@st.composite
def linked_conflict_jobs(draw):
    """Fig. 8 shape: distinct strides whose difference shares a factor
    with m, so the streams keep re-colliding."""
    m = draw(st.sampled_from([8, 16]))
    d1 = draw(st.integers(1, m - 1))
    d2 = draw(st.integers(1, m - 1))
    return SimJob(
        banks=m,
        bank_cycle=draw(st.integers(1, 4)),
        streams=((0, d1), (draw(st.integers(0, m - 1)), d2)),
        cpus=(draw(st.integers(0, 1)), draw(st.integers(0, 1))),
        priority=draw(
            st.sampled_from(["fixed", "cyclic", "lru", "block-cyclic:2"])
        ),
        intra_priority=draw(st.sampled_from([None, "fixed", "cyclic"])),
    )


@st.composite
def multi_section_jobs(draw):
    """Fig. 7/9 shape: sectioned memory, several ports, mixed CPUs."""
    m = draw(st.sampled_from([8, 12, 16]))
    sections = draw(
        st.sampled_from([s for s in (2, 4) if m % s == 0])
    )
    n = draw(st.integers(2, 4))
    return SimJob(
        banks=m,
        bank_cycle=draw(st.integers(1, 4)),
        streams=tuple(
            (draw(st.integers(0, m - 1)), draw(st.integers(0, m - 1)))
            for _ in range(n)
        ),
        cpus=tuple(draw(st.integers(0, 1)) for _ in range(n)),
        sections=sections,
        section_mapping=draw(st.sampled_from(["cyclic", "consecutive"])),
        priority=draw(st.sampled_from(["fixed", "cyclic", "lru"])),
        intra_priority=draw(st.sampled_from([None, "fixed", "lru"])),
    )


def mixed_populations(min_size=2, max_size=24):
    return st.lists(
        st.one_of(
            conflict_free_jobs(),
            barrier_jobs(),
            linked_conflict_jobs(),
            multi_section_jobs(),
        ),
        min_size=min_size,
        max_size=max_size,
    )


def _components(out):
    return (
        out.bandwidth,
        out.period,
        out.grants,
        out.steady_start,
        out.cycles,
    )


class TestBatchEquivalence:
    @given(jobs=mixed_populations())
    @settings(max_examples=40, deadline=None)
    def test_steady_populations_bit_identical(self, jobs):
        fast = get_backend("fast")
        batch = get_backend("batch")
        batched = batch.run_batch(jobs)
        for job, out in zip(jobs, batched):
            assert out.backend == "batch"
            assert _components(out) == _components(fast.run(job))

    @given(
        jobs=mixed_populations(max_size=12),
        horizons=st.lists(st.integers(1, 100), min_size=12, max_size=12),
    )
    @settings(max_examples=25, deadline=None)
    def test_span_populations_bit_identical(self, jobs, horizons):
        fast = get_backend("fast")
        batch = get_backend("batch")
        jobs = [
            SimJob(
                banks=j.banks,
                bank_cycle=j.bank_cycle,
                streams=j.streams,
                cpus=j.cpus,
                sections=j.sections,
                section_mapping=j.section_mapping,
                priority=j.priority,
                intra_priority=j.intra_priority,
                steady=False,
                cycles=h,
            )
            for j, h in zip(jobs, horizons)
        ]
        batched = batch.run_batch(jobs)
        for job, out in zip(jobs, batched):
            assert _components(out) == _components(fast.run(job))

    @given(jobs=mixed_populations(), bound=st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_max_cycles_error_identical(self, jobs, bound):
        """A bound too small for any cycle must raise the scalar
        engine's exact RuntimeError — same type, same message, and the
        error of the lowest-indexed failing job when several fail."""
        fast = get_backend("fast")
        batch = get_backend("batch")
        jobs = [
            SimJob(
                banks=j.banks,
                bank_cycle=j.bank_cycle,
                streams=j.streams,
                cpus=j.cpus,
                sections=j.sections,
                section_mapping=j.section_mapping,
                priority=j.priority,
                intra_priority=j.intra_priority,
                max_cycles=bound,
            )
            for j in jobs
        ]
        fast_err = None
        for job in jobs:
            try:
                fast.run(job)
            except RuntimeError as exc:
                fast_err = exc
                break
        if fast_err is None:
            assert [_components(o) for o in batch.run_batch(jobs)] == [
                _components(fast.run(j)) for j in jobs
            ]
        else:
            with pytest.raises(RuntimeError) as caught:
                batch.run_batch(jobs)
            assert str(caught.value) == str(fast_err)
