"""Property: the classifier's exact predictions always match simulation.

For random shapes and stride pairs, whenever :func:`classify_pair`
commits to an exact bandwidth (conflict-free or Theorem-6 unique
barrier), the cycle-accurate simulator must agree — on the appropriate
start domain (overlapping access sets for barriers).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arithmetic import access_set
from repro.core.classify import PairRegime, classify_pair
from repro.memory.config import MemoryConfig
from repro.sim.pairs import ObservedRegime, simulate_pair


@st.composite
def pair_case(draw):
    m = draw(st.sampled_from([8, 12, 13, 16, 20, 24]))
    n_c = draw(st.integers(2, 5))
    d1 = draw(st.integers(1, m - 1))
    d2 = draw(st.integers(1, m - 1))
    b2 = draw(st.integers(0, m - 1))
    return m, n_c, d1, d2, b2


class TestExactPredictionsHold:
    @given(case=pair_case())
    @settings(max_examples=120, deadline=None)
    def test_exact_predictions_match_simulation(self, case):
        m, n_c, d1, d2, b2 = case
        cls = classify_pair(m, n_c, d1, d2, stream1_priority=True)
        if cls.predicted_bandwidth is None:
            return  # nothing exact claimed

        cfg = MemoryConfig(banks=m, bank_cycle=n_c)
        pr = simulate_pair(cfg, d1, d2, b2=b2, priority="fixed")

        if cls.regime is PairRegime.CONFLICT_FREE:
            # synchronization: every start reaches 2
            assert pr.bandwidth == 2, case
        elif cls.regime is PairRegime.UNIQUE_BARRIER:
            overlapping = bool(
                access_set(m, d1, 0) & access_set(m, d2, b2)
            )
            if overlapping:
                assert pr.bandwidth == cls.predicted_bandwidth, case
                # and the predicted victim really is the delayed one
                expect = (
                    ObservedRegime.BARRIER_ON_1
                    if cls.delayed_stream == 1
                    else ObservedRegime.BARRIER_ON_2
                )
                assert pr.regime is expect, case
            else:
                # disjoint starts legitimately reach 2 (Theorem 2)
                assert pr.bandwidth == 2, case

    @given(case=pair_case())
    @settings(max_examples=120, deadline=None)
    def test_bounds_always_bracket(self, case):
        m, n_c, d1, d2, b2 = case
        cls = classify_pair(m, n_c, d1, d2, stream1_priority=True)
        cfg = MemoryConfig(banks=m, bank_cycle=n_c)
        pr = simulate_pair(cfg, d1, d2, b2=b2, priority="fixed")
        assert cls.bandwidth_lower <= pr.bandwidth <= cls.bandwidth_upper, case
