"""Cross-consistency properties between the program generators.

The kernel library (:mod:`repro.machine.kernels`), the triad generator
(:mod:`repro.machine.workloads`) and the loop compiler
(:mod:`repro.machine.loopgen`) produce programs through different code
paths; where their inputs coincide, their outputs must too.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.loopnest import ArrayRef
from repro.machine.kernels import copy_program, daxpy_program
from repro.machine.loopgen import compile_loop
from repro.machine.workloads import triad_program
from repro.memory.layout import CommonBlock


def shape(program):
    """The memory-relevant projection of a program."""
    return [
        (i.kind, i.base, i.stride, i.length, i.depends_on)
        for i in program
    ]


@st.composite
def loop_params(draw):
    inc = draw(st.integers(1, 8))
    n = draw(st.integers(1, 300))
    return inc, n


class TestGeneratorEquivalence:
    @given(p=loop_params())
    @settings(max_examples=30, deadline=None)
    def test_copy_equals_compiled_loop(self, p):
        inc, n = p
        size = 1 + 300 * 8
        common = CommonBlock.build([("A", (size,)), ("B", (size,))])
        kernel = copy_program(inc, n=n, common=common)
        compiled = compile_loop(
            [
                ArrayRef("B", (size,), inc=inc, kind="load"),
                ArrayRef("A", (size,), inc=inc, kind="store"),
            ],
            n,
            common,
        )
        assert shape(kernel) == shape(compiled)

    @given(p=loop_params())
    @settings(max_examples=30, deadline=None)
    def test_daxpy_equals_compiled_loop(self, p):
        inc, n = p
        size = 1 + 300 * 8
        common = CommonBlock.build([("A", (size,)), ("B", (size,))])
        kernel = daxpy_program(inc, n=n, common=common)
        compiled = compile_loop(
            [
                ArrayRef("B", (size,), inc=inc, kind="load"),
                ArrayRef("A", (size,), inc=inc, kind="load"),
                ArrayRef("A", (size,), inc=inc, kind="store"),
            ],
            n,
            common,
        )
        assert shape(kernel) == shape(compiled)

    @given(p=loop_params())
    @settings(max_examples=30, deadline=None)
    def test_triad_equals_compiled_loop(self, p):
        inc, n = p
        size = 1 + 300 * 8
        common = CommonBlock.build(
            [("A", (size,)), ("B", (size,)), ("C", (size,)), ("D", (size,))]
        )
        kernel = triad_program(inc, n=n, common=common)
        compiled = compile_loop(
            [
                ArrayRef("B", (size,), inc=inc, kind="load"),
                ArrayRef("C", (size,), inc=inc, kind="load"),
                ArrayRef("D", (size,), inc=inc, kind="load"),
                ArrayRef("A", (size,), inc=inc, kind="store"),
            ],
            n,
            common,
        )
        assert shape(kernel) == shape(compiled)


class TestMultistreamBoundProperty:
    @given(
        m=st.sampled_from([4, 8, 12, 16]),
        n_c=st.integers(1, 4),
        d=st.integers(1, 15),
        p=st.integers(1, 5),
    )
    @settings(max_examples=40, deadline=None)
    def test_equal_stride_bound_is_achieved(self, m, n_c, d, p):
        """The staggered construction always attains the ring bound."""
        from repro.core.multistream import equal_stride_bandwidth_bound
        from repro.memory.config import MemoryConfig
        from repro.sim.multi import simulate_multi

        d %= m
        if d == 0:
            d = 1
        cfg = MemoryConfig(banks=m, bank_cycle=n_c)
        specs = [((i * n_c * d) % m, d) for i in range(p)]
        got = simulate_multi(cfg, specs).bandwidth
        assert got == equal_stride_bandwidth_bound(m, n_c, d, p)
