"""Property-based tests on the machine model."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.workloads import triad_program
from repro.machine.xmp import run_triad
from repro.memory.layout import triad_common_block


class TestTriadInvariants:
    @given(
        inc=st.integers(1, 16),
        n=st.sampled_from([64, 128, 192]),
    )
    @settings(max_examples=12, deadline=None)
    def test_transfer_conservation(self, inc, n):
        """3 loads + 1 store per element, whatever the increment."""
        r = run_triad(inc, other_cpu_active=False, n=n)
        assert r.triad_grants == 4 * n

    @given(inc=st.integers(1, 16))
    @settings(max_examples=10, deadline=None)
    def test_dedicated_never_slower_than_contended(self, inc):
        ded = run_triad(inc, other_cpu_active=False, n=128)
        con = run_triad(inc, other_cpu_active=True, n=128)
        assert ded.cycles <= con.cycles

    @given(inc=st.integers(1, 16))
    @settings(max_examples=10, deadline=None)
    def test_no_simultaneous_conflicts_when_alone(self, inc):
        r = run_triad(inc, other_cpu_active=False, n=128)
        assert r.simultaneous_conflicts == 0
        assert r.simultaneous_stall_cycles == 0

    @given(
        inc=st.integers(1, 8),
        chain=st.integers(0, 16),
    )
    @settings(max_examples=10, deadline=None)
    def test_chain_latency_roughly_monotone(self, inc, chain):
        """Longer chains cost time — up to scheduling anomalies.

        Strict monotonicity is FALSE: delaying the store can shift its
        phase onto a luckier bank alignment and save a couple of clocks
        (a Graham-style anomaly; e.g. inc=1, chain 8→16 once saved one
        clock).  The dependable statement is monotone-within-slack.
        """
        fast = run_triad(
            inc, other_cpu_active=False, n=128, chain_latency=chain
        )
        slow = run_triad(
            inc, other_cpu_active=False, n=128, chain_latency=chain + 8
        )
        assert slow.cycles >= fast.cycles - 4

    @given(inc=st.integers(1, 16))
    @settings(max_examples=10, deadline=None)
    def test_determinism(self, inc):
        a = run_triad(inc, other_cpu_active=True, n=128)
        b = run_triad(inc, other_cpu_active=True, n=128)
        assert a == b


class TestProgramGeneration:
    @given(
        inc=st.integers(1, 12),
        n=st.integers(1, 512),
        vl=st.sampled_from([16, 64, 100]),
    )
    @settings(max_examples=40, deadline=None)
    def test_strip_mining_covers_exactly_n(self, inc, n, vl):
        common = triad_common_block()
        prog = triad_program(inc, n=n, common=common, vector_length=vl)
        loads = [i for i in prog if i.name.startswith("LOAD B")]
        assert sum(i.length for i in loads) == n
        stores = [i for i in prog if i.name.startswith("STORE")]
        assert sum(i.length for i in stores) == n

    @given(inc=st.integers(1, 12), n=st.integers(1, 300))
    @settings(max_examples=40, deadline=None)
    def test_every_store_depends_on_three_loads(self, inc, n):
        prog = triad_program(inc, n=n)
        by_uid = {i.uid: i for i in prog}
        for instr in prog:
            if instr.name.startswith("STORE"):
                assert len(instr.depends_on) == 3
                for dep in instr.depends_on:
                    assert by_uid[dep].name.startswith("LOAD")
