"""Differential testing: the engine vs an independent reference model.

A second, deliberately naive implementation of Section II's semantics —
written in a different style (event dicts, no NumPy, no phase lists) —
is compared clock-by-clock against :class:`repro.sim.engine.Engine` on
randomly generated configurations.  Any divergence in the grant sequence
fails the property.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stream import AccessStream
from repro.memory.config import MemoryConfig
from repro.sim.engine import Engine
from repro.sim.port import Port


# ----------------------------------------------------------------------
# The reference model (independent re-implementation)
# ----------------------------------------------------------------------
def reference_simulate(
    m: int,
    n_c: int,
    s: int,
    mapping: str,
    streams: list[tuple[int, int, int]],  # (cpu, start, stride)
    priority: str,
    clocks: int,
) -> list[list[tuple[int, int]]]:
    """Return, per clock, the sorted list of (port, bank) grants."""

    def section_of(bank: int) -> int:
        if mapping == "cyclic":
            return bank % s
        return bank // (m // s)

    free_at = {j: 0 for j in range(m)}  # clock at which bank j frees
    pos = [0] * len(streams)
    grants_log: list[list[tuple[int, int]]] = []
    rotation = 0  # cyclic priority offset
    last_grant = [-1] * len(streams)  # LRU bookkeeping

    for t in range(clocks):
        wants = {}
        for i, (cpu, start, stride) in enumerate(streams):
            wants[i] = (start + pos[i] * stride) % m

        def rank(port: int) -> tuple:
            if priority == "fixed":
                return (port,)
            if priority == "lru":
                return (last_grant[port], port)
            if priority.startswith("block-cyclic:"):
                block = int(priority.split(":", 1)[1])
                offset = (t // block) % len(streams)
                return ((port - offset) % len(streams), port)
            return ((port - rotation) % len(streams), port)

        # Stage 1 (inside each CPU): among ports whose bank is inactive,
        # each (cpu, section) path goes to the best-ranked requester;
        # losers are done for this clock (the two-stage topology does
        # NOT resurrect them if the winner later loses at the memory).
        path_winner: dict[tuple[int, int], int] = {}
        for port in sorted(wants, key=rank):
            bank = wants[port]
            if free_at[bank] > t:
                continue
            path = (streams[port][0], section_of(bank))
            path_winner.setdefault(path, port)

        # Stage 2 (at the memory): among the forwarded requests, each
        # bank goes to the best-ranked port.
        bank_winner: dict[int, int] = {}
        for port in sorted(path_winner.values(), key=rank):
            bank = wants[port]
            bank_winner.setdefault(bank, port)

        granted = []
        for bank, port in bank_winner.items():
            granted.append((port, bank))
            free_at[bank] = t + n_c
            pos[port] += 1
            last_grant[port] = t
        grants_log.append(sorted(granted))
        rotation = (rotation + 1) % len(streams)
    return grants_log


def engine_simulate(
    m, n_c, s, mapping, streams, priority, clocks
) -> list[list[tuple[int, int]]]:
    cfg = MemoryConfig(
        banks=m, bank_cycle=n_c, sections=s, section_mapping=mapping
    )
    ports = [Port(index=i, cpu=c) for i, (c, _, _) in enumerate(streams)]
    engine = Engine(cfg, ports, priority=priority, trace=True)
    for port, (_, b, d) in zip(ports, streams):
        port.assign(AccessStream(b % m, d % m))
    engine.run(clocks)
    assert engine.trace is not None
    out = []
    for cyc in engine.trace.cycles:
        out.append(sorted((g.port, g.bank) for g in cyc.grants))
    return out


# ----------------------------------------------------------------------
# The property
# ----------------------------------------------------------------------
@st.composite
def scenario(draw):
    m = draw(st.sampled_from([4, 8, 12, 16]))
    n_c = draw(st.integers(1, 4))
    divisors = [d for d in range(1, m + 1) if m % d == 0]
    s = draw(st.sampled_from(divisors))
    mapping = draw(st.sampled_from(["cyclic", "consecutive"]))
    n_streams = draw(st.integers(1, 4))
    streams = [
        (
            draw(st.integers(0, 1)),          # cpu
            draw(st.integers(0, m - 1)),      # start bank
            draw(st.integers(0, m - 1)),      # stride
        )
        for _ in range(n_streams)
    ]
    priority = draw(
        st.sampled_from(["fixed", "cyclic", "lru", "block-cyclic:3"])
    )
    return m, n_c, s, mapping, streams, priority


class TestDifferential:
    @given(sc=scenario(), clocks=st.integers(10, 80))
    @settings(max_examples=150, deadline=None)
    def test_engine_matches_reference(self, sc, clocks):
        m, n_c, s, mapping, streams, priority = sc
        ref = reference_simulate(m, n_c, s, mapping, streams, priority, clocks)
        got = engine_simulate(m, n_c, s, mapping, streams, priority, clocks)
        assert got == ref

    def test_reference_reproduces_fig3_bandwidth(self):
        """Anchor the reference model itself against the paper."""
        log = reference_simulate(
            13, 6, 13, "cyclic",
            [(0, 0, 1), (1, 0, 6)], "fixed", 600,
        )
        grants = sum(len(g) for g in log[200:600])  # skip transient
        assert abs(grants / 400 - 7 / 6) < 0.01
