"""Scheduler equivalence: inline, pool, and shard execution are
bit-identical over the same job population — payloads, failure
surfacing, and stats invariants alike (docs/RUNNER.md "Scheduling")."""

from __future__ import annotations

import pytest

from repro.memory.config import MemoryConfig
from repro.runner import (
    FailedOutcome,
    RetryPolicy,
    SweepExecutor,
    jobs_for_offsets,
)
from repro.runner import backends as backends_mod
from repro.runner.backends import FastBackend

CFG = MemoryConfig(banks=12, bank_cycle=3)

#: A retry policy that never sleeps (tests should not wait on backoff).
FAST = RetryPolicy(max_retries=2, backoff_base_ms=0)

#: One SweepExecutor placement configuration per scheduler under test.
PLACEMENTS = {
    "inline": {"workers": 1},
    "pool-2": {"workers": 2},
    "pool-3": {"workers": 3},
    "shard-2": {"shards": 2},
}


def _mixed_jobs():
    """A population spanning the execution tiers: theorem-decided
    pairs (analytic under ``auto``), conflict pairs (simulated), and
    enough starts that pooled runs actually chunk."""
    jobs = []
    for d1, d2 in [(1, 7), (2, 6), (1, 1), (3, 4), (4, 8)]:
        jobs.extend(jobs_for_offsets(CFG, d1, d2, range(8)))
    return jobs


def _outcome_fingerprint(outcomes):
    out = []
    for o in outcomes:
        if getattr(o, "failed", False):
            out.append(("failed", o.job.cache_key(), o.error, o.attempts))
        else:
            out.append(o.to_payload())
    return out


def _install_backend(monkeypatch, backend):
    monkeypatch.setitem(backends_mod._INSTANCES, backend.name, backend)


class PoisonBackend(FastBackend):
    """Raises whenever one of the poisoned jobs is in the batch."""

    name = "equiv-poison"

    def __init__(self, poison_keys):
        super().__init__()
        self.poison_keys = set(poison_keys)

    def run_batch(self, jobs):
        for job in jobs:
            if job.cache_key() in self.poison_keys:
                raise RuntimeError("poisoned job in batch")
        return super().run_batch(jobs)


@pytest.mark.parametrize("backend", ["fast", "auto", "batch"])
@pytest.mark.parametrize("placement", sorted(PLACEMENTS))
def test_bit_identical_outcomes(backend, placement):
    jobs = _mixed_jobs()
    baseline = SweepExecutor(backend=backend).run_many(jobs)
    ex = SweepExecutor(backend=backend, **PLACEMENTS[placement])
    outs = ex.run_many(jobs)
    assert _outcome_fingerprint(outs) == _outcome_fingerprint(baseline)


@pytest.mark.parametrize("placement", sorted(PLACEMENTS))
def test_stats_invariants(placement):
    jobs = _mixed_jobs()
    unique = len({j.cache_key() for j in jobs})
    ex = SweepExecutor(backend="fast", **PLACEMENTS[placement])
    ex.run_many(jobs)
    s = ex.stats
    assert s.submitted == len(jobs)
    assert s.hits + s.deduped + s.executed == s.submitted
    assert s.executed == unique
    assert s.failures == 0
    # A second pass is all hits, on every scheduler.
    ex.run_many(jobs)
    assert ex.stats.executed == unique
    assert ex.stats.hits == 2 * len(jobs) - unique - ex.stats.deduped


@pytest.mark.parametrize("placement", sorted(PLACEMENTS))
def test_failed_outcomes_surface_identically(monkeypatch, placement):
    jobs = jobs_for_offsets(CFG, 1, 7, range(12))
    poison_keys = sorted({j.cache_key() for j in jobs})[:2]
    _install_backend(monkeypatch, PoisonBackend(poison_keys))

    baseline_ex = SweepExecutor(backend="equiv-poison", retry=FAST)
    baseline = _outcome_fingerprint(baseline_ex.run_many(jobs))

    ex = SweepExecutor(
        backend="equiv-poison", retry=FAST, **PLACEMENTS[placement]
    )
    outs = ex.run_many(jobs)
    assert _outcome_fingerprint(outs) == baseline
    for out, job in zip(outs, jobs):
        if job.cache_key() in poison_keys:
            assert isinstance(out, FailedOutcome)
            assert out.job == job
            assert "poisoned job in batch" in out.error
        else:
            assert not out.failed
    assert ex.stats.failures == baseline_ex.stats.failures == len(
        poison_keys
    )
    assert ex.stats.retries > 0
