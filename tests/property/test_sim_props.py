"""Property-based tests on simulator invariants."""

from __future__ import annotations

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.single import predict_single
from repro.core.stream import AccessStream
from repro.memory.config import MemoryConfig
from repro.sim.engine import Engine, simulate_streams
from repro.sim.pairs import simulate_pair
from repro.sim.port import Port


@st.composite
def memory_shape(draw):
    m = draw(st.integers(2, 20))
    n_c = draw(st.integers(1, 5))
    return MemoryConfig(banks=m, bank_cycle=n_c)


class TestConservationLaws:
    @given(
        cfg=memory_shape(),
        d1=st.integers(0, 19),
        d2=st.integers(0, 19),
        b2=st.integers(0, 19),
        horizon=st.integers(5, 60),
    )
    @settings(max_examples=80, deadline=None)
    def test_grants_plus_stalls_equals_port_clocks(self, cfg, d1, d2, b2, horizon):
        """Every clock, every non-idle port either grants or stalls."""
        m = cfg.banks
        res = simulate_streams(
            cfg,
            [AccessStream(0, d1 % m), AccessStream(b2 % m, d2 % m)],
            cpus=[0, 1],
            cycles=horizon,
        )
        for ps in res.stats.ports:
            assert ps.grants + ps.total_stall_cycles == horizon

    @given(
        cfg=memory_shape(),
        d=st.integers(0, 19),
        horizon=st.integers(5, 60),
    )
    @settings(max_examples=60, deadline=None)
    def test_no_bank_double_booking(self, cfg, d, horizon):
        """A bank never serves two grants within n_c clocks."""
        m = cfg.banks
        res = simulate_streams(
            cfg,
            [AccessStream(0, d % m), AccessStream(1 % m, 1)],
            cpus=[0, 1],
            cycles=horizon,
            trace=True,
        )
        last_grant: dict[int, int] = {}
        assert res.trace is not None
        for cyc in res.trace.cycles:
            for g in cyc.grants:
                if g.bank in last_grant:
                    assert cyc.cycle - last_grant[g.bank] >= cfg.bank_cycle
                last_grant[g.bank] = cyc.cycle


class TestSteadyStateProperties:
    @given(cfg=memory_shape(), d=st.integers(0, 19))
    @settings(max_examples=60, deadline=None)
    def test_single_stream_exactness(self, cfg, d):
        """Simulator steady state == Section III-A closed form, always."""
        m = cfg.banks
        res = simulate_streams(
            cfg, [AccessStream(0, d % m)], cpus=[0], steady=True
        )
        assert res.steady_bandwidth == predict_single(m, d % m, cfg.bank_cycle).bandwidth

    @given(
        cfg=memory_shape(),
        d1=st.integers(0, 19),
        d2=st.integers(0, 19),
        b2=st.integers(0, 19),
    )
    @settings(max_examples=60, deadline=None)
    def test_pair_bandwidth_within_absolute_bounds(self, cfg, d1, d2, b2):
        m = cfg.banks
        pr = simulate_pair(cfg, d1 % m, d2 % m, b2=b2 % m)
        assert 0 < pr.bandwidth <= 2
        # per-stream rate can never exceed 1
        assert pr.grants[0] <= pr.period
        assert pr.grants[1] <= pr.period

    @given(
        cfg=memory_shape(),
        d1=st.integers(0, 19),
        d2=st.integers(0, 19),
        b2=st.integers(0, 19),
    )
    @settings(max_examples=40, deadline=None)
    def test_priority_rule_does_not_change_determinism(self, cfg, d1, d2, b2):
        """Same inputs, same rule ⇒ identical steady state (pure function)."""
        m = cfg.banks
        a = simulate_pair(cfg, d1 % m, d2 % m, b2=b2 % m, priority="cyclic")
        b = simulate_pair(cfg, d1 % m, d2 % m, b2=b2 % m, priority="cyclic")
        assert a.bandwidth == b.bandwidth
        assert a.period == b.period


class TestTimeShiftEquivalence:
    @given(
        cfg=memory_shape(),
        d=st.integers(1, 19),
        delay=st.integers(0, 10),
    )
    @settings(max_examples=40, deadline=None)
    def test_time_offset_equals_space_offset(self, cfg, d, delay):
        """The paper's assumption 2 argument: starting stream 2 ``t``
        clocks late is the same as starting it ``t*d2`` banks back —
        both runs converge to the same steady bandwidth (stream 1
        conflict-free while alone)."""
        m = cfg.banks
        d %= m
        if d == 0:
            return
        # run A: both start together, stream 2 displaced in space
        a = simulate_pair(cfg, 1, d, b2=(-delay) % m)
        # run B: emulate late start by letting stream 1 run alone first.
        ports = [Port(index=0, cpu=0), Port(index=1, cpu=1)]
        engine = Engine(cfg, ports)
        ports[0].assign(AccessStream(delay % m, 1))  # as if it ran `delay` clocks
        ports[1].assign(AccessStream(0, d))
        bw, _, _, _ = engine.run_to_steady_state()
        assert bw == a.bandwidth
