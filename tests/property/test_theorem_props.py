"""Property-based tests: theorems vs brute force and invariances."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import theorems as th
from repro.core.arithmetic import access_set, units
from repro.core.classify import classify_pair
from repro.core.isomorphism import canonicalize, orbit


small_m = st.integers(min_value=2, max_value=24)


@st.composite
def shape_and_pair(draw):
    m = draw(small_m)
    n_c = draw(st.integers(1, 6))
    d1 = draw(st.integers(0, m - 1))
    d2 = draw(st.integers(0, m - 1))
    return m, n_c, d1, d2


class TestTheorem2Properties:
    @given(args=shape_and_pair())
    @settings(max_examples=150)
    def test_disjointness_matches_brute_force(self, args):
        m, _, d1, d2 = args
        exists = any(
            not (access_set(m, d1, 0) & access_set(m, d2, b2))
            for b2 in range(m)
        )
        assert th.disjoint_sets_possible(m, d1, d2) == exists

    @given(args=shape_and_pair())
    @settings(max_examples=100)
    def test_offsets_sound(self, args):
        m, _, d1, d2 = args
        for off in th.disjoint_start_offsets(m, d1, d2):
            assert not (access_set(m, d1, 0) & access_set(m, d2, off))


class TestConflictFreeInvariances:
    @given(args=shape_and_pair())
    @settings(max_examples=150)
    def test_symmetric_in_stream_order(self, args):
        m, n_c, d1, d2 = args
        assert th.conflict_free_possible(m, n_c, d1, d2) == th.conflict_free_possible(
            m, n_c, d2, d1
        )

    @given(args=shape_and_pair(), data=st.data())
    @settings(max_examples=100)
    def test_invariant_under_isomorphism(self, args, data):
        """Bank renumbering (Appendix) preserves Theorem 3's verdict."""
        m, n_c, d1, d2 = args
        k = data.draw(st.sampled_from(units(m)))
        assert th.conflict_free_possible(m, n_c, d1, d2) == th.conflict_free_possible(
            m, n_c, (k * d1) % m, (k * d2) % m
        )

    @given(args=shape_and_pair())
    @settings(max_examples=100)
    def test_nc_monotone(self, args):
        """Raising the bank cycle time can only destroy conflict-freeness."""
        m, n_c, d1, d2 = args
        if not th.conflict_free_possible(m, n_c + 1, d1, d2):
            return
        assert th.conflict_free_possible(m, n_c, d1, d2)


class TestIsomorphismProperties:
    @given(m=small_m, d1=st.integers(0, 23), d2=st.integers(0, 23))
    @settings(max_examples=100)
    def test_orbit_is_equivalence_class(self, m, d1, d2):
        d1 %= m
        d2 %= m
        orb = orbit(m, d1, d2)
        # reflexive
        assert (d1, d2) in orb
        # every member generates the same orbit
        other = sorted(orb)[0]
        assert orbit(m, *other) == orb

    @given(m=small_m, d1=st.integers(1, 23), d2=st.integers(0, 23))
    @settings(max_examples=100)
    def test_canonical_form_in_orbit_with_divisor_head(self, m, d1, d2):
        d1 %= m
        d2 %= m
        if d1 == 0:
            return
        c = canonicalize(m, d1, d2)
        assert m % c.d1 == 0
        assert ((c.d1 % m, c.d2)) in orbit(m, d1, d2)


class TestClassifierProperties:
    @given(args=shape_and_pair())
    @settings(max_examples=100)
    def test_bounds_are_ordered_and_capped(self, args):
        m, n_c, d1, d2 = args
        c = classify_pair(m, n_c, d1, d2)
        assert 0 <= c.bandwidth_lower <= c.bandwidth_upper <= 2
        if c.predicted_bandwidth is not None:
            assert (
                c.bandwidth_lower
                <= c.predicted_bandwidth
                <= c.bandwidth_upper
            )

    @given(args=shape_and_pair())
    @settings(max_examples=100)
    def test_symmetric_regime_under_swap(self, args):
        """Stream order is presentation, not physics: the regime and
        bounds agree for (d1,d2) and (d2,d1)."""
        m, n_c, d1, d2 = args
        a = classify_pair(m, n_c, d1, d2)
        b = classify_pair(m, n_c, d2, d1)
        assert a.regime is b.regime
        assert a.bandwidth_lower == b.bandwidth_lower
        assert a.bandwidth_upper == b.bandwidth_upper
