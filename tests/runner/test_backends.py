"""Backend registry, selection rules and reference/fast agreement."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.memory.config import FIG2_CONFIG, FIG3_CONFIG, MemoryConfig
from repro.runner import SimJob, run
from repro.runner.backends import (
    BACKEND_ENV_VAR,
    FastBackend,
    available_backends,
    get_backend,
    resolve_backend,
)


class TestRegistry:
    def test_available(self):
        assert available_backends() == (
            "analytic", "auto", "batch", "fast", "reference"
        )

    def test_instances_are_shared(self):
        assert get_backend("fast") is get_backend("fast")

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("warp")


class TestResolution:
    def test_default_is_reference(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend(None).name == "reference"

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "fast")
        assert resolve_backend(None).name == "fast"

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "fast")
        assert resolve_backend("reference").name == "reference"

    def test_trace_jobs_force_reference(self):
        job = SimJob.from_specs(
            FIG3_CONFIG, [(0, 1), (0, 6)], steady=False, cycles=30, trace=True
        )
        assert resolve_backend("fast", job).name == "reference"
        out = run(job, backend="fast")
        assert out.backend == "reference"
        assert out.result is not None and out.result.trace is not None

    def test_fast_backend_rejects_trace(self):
        job = SimJob.from_specs(
            FIG3_CONFIG, [(0, 1)], steady=False, cycles=10, trace=True
        )
        with pytest.raises(ValueError, match="no trace"):
            FastBackend().run(job)


AGREEMENT_JOBS = [
    SimJob.from_specs(FIG2_CONFIG, [(0, 1), (3, 7)]),
    SimJob.from_specs(FIG3_CONFIG, [(0, 1), (0, 6)]),
    SimJob.from_specs(
        MemoryConfig(banks=16, bank_cycle=4, sections=4),
        [(0, 1), (2, 2), (5, 3)],
        cpus=[0, 0, 1],
        priority="cyclic",
    ),
    SimJob.from_specs(
        MemoryConfig(banks=13, bank_cycle=4),
        [(0, 1), (7, 3)],
        priority="lru",
    ),
    SimJob.from_specs(
        MemoryConfig(banks=16, bank_cycle=4, sections=4),
        [(0, 1), (1, 1), (2, 5)],
        cpus=[0, 0, 1],
        priority="block-cyclic:3",
        intra_priority="fixed",
    ),
]


class TestAgreement:
    @pytest.mark.parametrize("job", AGREEMENT_JOBS, ids=lambda j: j.describe())
    def test_steady_outcomes_identical(self, job):
        ref = run(job, backend="reference")
        fast = run(job, backend="fast")
        assert fast.bandwidth == ref.bandwidth
        assert fast.period == ref.period
        assert fast.grants == ref.grants
        assert fast.steady_start == ref.steady_start

    def test_fixed_horizon_outcomes_identical(self):
        job = SimJob.from_specs(
            FIG2_CONFIG, [(0, 1), (3, 7)], steady=False, cycles=100
        )
        ref = run(job, backend="reference")
        fast = run(job, backend="fast")
        assert fast.bandwidth == ref.bandwidth == Fraction(sum(ref.grants), 100)
        assert fast.grants == ref.grants
        assert fast.period is None and fast.steady_start is None

    def test_fast_carries_no_engine_result(self):
        out = run(AGREEMENT_JOBS[0], backend="fast")
        assert out.result is None
        assert run(AGREEMENT_JOBS[0], backend="reference").result is not None


class TestRunBatch:
    def test_fast_batch_matches_per_job_runs(self):
        # Mixed shapes in one batch: the shared section-table cache must
        # not leak one config's table into another's jobs.
        jobs = AGREEMENT_JOBS + [
            SimJob.from_specs(FIG2_CONFIG, [(0, 1), (5, 7)]),
            SimJob.from_specs(FIG3_CONFIG, [(0, 1)], steady=False, cycles=40),
        ]
        batch = FastBackend().run_batch(jobs)
        for job, out in zip(jobs, batch):
            solo = FastBackend().run(job)
            assert out.bandwidth == solo.bandwidth
            assert out.period == solo.period
            assert out.grants == solo.grants
            assert out.steady_start == solo.steady_start

    def test_auto_batch_mixes_tiers_in_order(self):
        from repro.runner.analytic import solve

        decided = SimJob.from_specs(FIG3_CONFIG, [(0, 1)])
        undecided = SimJob.from_specs(FIG3_CONFIG, [(0, 1), (0, 6)])
        assert solve(decided) is not None and solve(undecided) is None
        jobs = [undecided, decided, undecided, decided]
        outs = get_backend("auto").run_batch(jobs)
        assert [o.backend for o in outs] == ["fast", "analytic", "fast", "analytic"]
        for job, out in zip(jobs, outs):
            ref = run(job, backend="reference")
            assert out.bandwidth == ref.bandwidth
            assert out.grants == ref.grants
            assert out.period == ref.period
            assert out.steady_start == ref.steady_start

    def test_reference_batch_matches_run(self):
        outs = get_backend("reference").run_batch(AGREEMENT_JOBS[:2])
        for job, out in zip(AGREEMENT_JOBS[:2], outs):
            assert out.bandwidth == run(job, backend="reference").bandwidth


class TestBatchBackend:
    def test_batch_matches_fast_per_job(self):
        jobs = AGREEMENT_JOBS + [
            SimJob.from_specs(FIG2_CONFIG, [(0, 1), (5, 7)]),
            SimJob.from_specs(FIG3_CONFIG, [(0, 1)], steady=False, cycles=40),
        ]
        outs = get_backend("batch").run_batch(jobs)
        for job, out in zip(jobs, outs):
            solo = get_backend("fast").run(job)
            assert out.backend == "batch"
            assert out.bandwidth == solo.bandwidth
            assert out.period == solo.period
            assert out.grants == solo.grants
            assert out.steady_start == solo.steady_start
            assert out.cycles == solo.cycles

    def test_single_run_entry_point(self):
        job = SimJob.from_specs(FIG3_CONFIG, [(0, 1), (0, 6)])
        out = get_backend("batch").run(job)
        fast = get_backend("fast").run(job)
        assert (out.bandwidth, out.period, out.grants) == (
            fast.bandwidth, fast.period, fast.grants
        )

    def test_rejects_trace_jobs(self):
        job = SimJob.from_specs(
            FIG3_CONFIG, [(0, 1)], steady=False, cycles=10, trace=True
        )
        with pytest.raises(ValueError, match="no trace"):
            get_backend("batch").run(job)

    def test_max_cycles_error_matches_fast(self):
        job = SimJob.from_specs(FIG3_CONFIG, [(0, 1), (0, 6)], max_cycles=2)
        with pytest.raises(RuntimeError) as fast_err:
            get_backend("fast").run(job)
        with pytest.raises(RuntimeError) as batch_err:
            get_backend("batch").run_batch([job])
        assert str(batch_err.value) == str(fast_err.value)

    def test_auto_routes_large_populations_to_batch(self):
        from repro.runner.batchsim import BATCH_MIN_POPULATION

        undecided = SimJob.from_specs(FIG3_CONFIG, [(0, 1), (0, 6)])
        small = get_backend("auto").run_batch([undecided] * 3)
        assert {o.backend for o in small} == {"fast"}
        large = get_backend("auto").run_batch(
            [undecided] * BATCH_MIN_POPULATION
        )
        assert {o.backend for o in large} == {"batch"}
        assert {(o.bandwidth, o.period) for o in large} == {
            (small[0].bandwidth, small[0].period)
        }

    def test_preferred_chunk_hints(self):
        assert get_backend("batch").preferred_chunk >= 1024
        assert get_backend("fast").preferred_chunk < 256
        assert get_backend("reference").preferred_chunk == 1


class TestOutcomeViews:
    def test_conflict_free_pair(self):
        out = run(SimJob.from_specs(FIG2_CONFIG, [(0, 1), (3, 7)]))
        assert out.bandwidth == 2
        assert out.conflict_free
        assert out.full_rate_streams == 2
        assert out.pair_regime.value == "conflict-free"

    def test_barrier_pair(self):
        out = run(SimJob.from_specs(FIG3_CONFIG, [(0, 1), (0, 6)]))
        assert out.bandwidth == Fraction(7, 6)
        assert not out.conflict_free
        assert out.pair_regime.value == "barrier-on-2"


class TestBatchPolicyFallback:
    def test_policy_jobs_take_the_scalar_fallback(self):
        from repro.obs import capture_metrics
        from repro.obs import names as obs_names

        plain = SimJob.from_specs(FIG3_CONFIG, [(0, 1), (0, 6)])
        regulated = SimJob.from_specs(
            FIG3_CONFIG, [(0, 1), (0, 6)], regulate=["stream=1/4"]
        )
        wfq = SimJob.from_specs(
            FIG3_CONFIG, [(0, 1), (0, 6)], arbiter="wfq:2,1"
        )
        with capture_metrics() as reg:
            outs = get_backend("batch").run_batch([plain, regulated, wfq])
        # Everything reports as the batch backend, matching fast exactly.
        for job, out in zip([plain, regulated, wfq], outs):
            solo = get_backend("fast").run(job)
            assert out.backend == "batch"
            assert out.bandwidth == solo.bandwidth
            assert out.grants == solo.grants
        fallback = reg.get(obs_names.BATCH_FALLBACK, reason="policy")
        assert fallback is not None and fallback.value == 2

    def test_vector_core_refuses_policy_jobs(self):
        from repro.runner.batchsim import run_span_batch, run_steady_batch

        regulated = SimJob.from_specs(
            FIG3_CONFIG, [(0, 1)], regulate=["stream=1/4"]
        )
        with pytest.raises(ValueError, match="batch core"):
            run_steady_batch([regulated])
        span = SimJob.from_specs(
            FIG3_CONFIG, [(0, 1)], arbiter="wfq:2",
            steady=False, cycles=10,
        )
        with pytest.raises(ValueError, match="batch core"):
            run_span_batch([span], 10)
