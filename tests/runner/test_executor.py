"""SweepExecutor: dedup, memoization, disk cache, fan-out."""

from __future__ import annotations

import json

import pytest

from repro.memory.config import FIG2_CONFIG, MemoryConfig
from repro.runner import (
    SimJob,
    SweepExecutor,
    default_executor,
    jobs_for_offsets,
    run,
)

CFG = MemoryConfig(banks=12, bank_cycle=3)


def _job(b2: int = 5) -> SimJob:
    return SimJob.from_specs(CFG, [(0, 1), (b2, 7)])


class TestDedup:
    def test_identical_jobs_run_once(self):
        ex = SweepExecutor()
        outs = ex.run_many([_job(), _job(), _job()])
        assert ex.stats.submitted == 3
        assert ex.stats.executed == 1
        assert ex.stats.deduped == 2
        assert len({o.bandwidth for o in outs}) == 1

    def test_isomorphic_jobs_collapse(self):
        # j -> 5j maps the first job's streams onto the second's.
        a = SimJob.from_specs(CFG, [(0, 1), (5, 7)])
        b = SimJob.from_specs(CFG, [(0, 5), (25, 35)])
        ex = SweepExecutor()
        out_a, out_b = ex.run_many([a, b])
        assert ex.stats.executed == 1
        assert out_a.bandwidth == out_b.bandwidth
        assert out_a.grants == out_b.grants
        # each outcome still reports the job that was actually asked for
        assert out_a.job is a and out_b.job is b

    def test_memo_hits_across_batches(self):
        ex = SweepExecutor()
        ex.run_one(_job())
        ex.run_one(_job())
        assert ex.stats.executed == 1
        assert ex.stats.hits == 1

    def test_results_match_direct_run(self):
        ex = SweepExecutor()
        jobs = jobs_for_offsets(CFG, 1, 7, range(12))
        for job, out in zip(jobs, ex.run_many(jobs)):
            direct = run(job)
            assert out.bandwidth == direct.bandwidth
            assert out.period == direct.period
            assert out.grants == direct.grants
            assert out.steady_start == direct.steady_start


class TestDiskCache:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "cache" / "outcomes.json"
        with SweepExecutor(cache_path=path) as ex:
            first = ex.run_one(_job())
        assert path.exists()

        warm = SweepExecutor(cache_path=path)
        out = warm.run_one(_job())
        assert warm.stats.executed == 0
        assert warm.stats.hits == 1
        assert out.bandwidth == first.bandwidth
        assert out.period == first.period
        assert out.grants == first.grants
        assert out.backend.startswith("cache:")

    def test_version_mismatch_quarantined(self, tmp_path):
        path = tmp_path / "outcomes.json"
        path.write_text(json.dumps({"version": 0, "entries": {"x": {}}}))
        with pytest.warns(RuntimeWarning, match="cache version"):
            ex = SweepExecutor(cache_path=path)
        assert len(ex) == 0
        assert not path.exists()
        assert path.with_suffix(".json.corrupt").exists()

    def test_flush_without_path_is_noop(self):
        ex = SweepExecutor()
        ex.run_one(_job())
        ex.flush()  # must not raise

    def test_eviction_bound(self):
        ex = SweepExecutor(max_memo=3)
        ex.run_many(jobs_for_offsets(CFG, 1, 7, range(12)))
        assert len(ex) <= 3

    def test_eviction_does_not_break_batches(self):
        # A batch larger than max_memo must still return every outcome.
        ex = SweepExecutor(max_memo=2)
        outs = ex.run_many(jobs_for_offsets(CFG, 1, 7, range(12)))
        assert len(outs) == 12


class TestLruMemo:
    """Regression: the memo is genuine LRU, not insertion-order FIFO."""

    def test_hit_refreshes_recency(self):
        a, b, c = (_job(1), _job(2), _job(3))
        ex = SweepExecutor(max_memo=2)
        ex.run_many([a, b])           # memo: [a, b]
        ex.run_one(a)                 # hit refreshes a -> memo: [b, a]
        executed = ex.stats.executed
        ex.run_one(c)                 # evicts b (LRU), not a
        assert ex.stats.executed == executed + 1
        ex.run_one(a)                 # still cached
        assert ex.stats.executed == executed + 1
        ex.run_one(b)                 # evicted: must re-run
        assert ex.stats.executed == executed + 2

    def test_fresh_results_survive_their_own_batch(self):
        # Without evict-before-insert, a full memo evicts the batch's
        # own results the moment they land.
        ex = SweepExecutor(max_memo=3)
        ex.run_many(jobs_for_offsets(CFG, 1, 7, range(3)))   # fill memo
        ex.run_many(jobs_for_offsets(CFG, 1, 7, [3, 4, 5]))  # displace it
        executed = ex.stats.executed
        ex.run_many(jobs_for_offsets(CFG, 1, 7, [3, 4, 5]))
        assert ex.stats.executed == executed  # all three were retained

    def test_held_hits_survive_same_batch_eviction(self):
        # A cache hit whose memo entry is evicted by the same batch's
        # fresh results must still be returned intact.
        ex = SweepExecutor(max_memo=1)
        first = ex.run_one(_job(1))
        outs = ex.run_many([_job(1), _job(2), _job(3)])
        assert outs[0].bandwidth == first.bandwidth
        assert outs[0].grants == first.grants
        assert len(ex) == 1


class TestStats:
    def test_as_dict_carries_every_counter(self):
        ex = SweepExecutor(max_memo=3)
        ex.run_many(jobs_for_offsets(CFG, 1, 7, range(12)))
        d = ex.stats.as_dict()
        assert set(d) == {
            "submitted", "hits", "deduped", "executed", "evictions",
            "retries", "failures", "recovered",
        }
        assert d["submitted"] == 12
        assert d["evictions"] == ex.stats.evictions

    def test_evictions_counted(self):
        ex = SweepExecutor(max_memo=3)
        ex.run_many(jobs_for_offsets(CFG, 1, 7, range(12)))
        unique = ex.stats.executed
        assert unique > 3
        assert ex.stats.evictions == unique - 3
        assert len(ex) == 3

    def test_no_evictions_below_bound(self):
        ex = SweepExecutor()
        ex.run_many(jobs_for_offsets(CFG, 1, 7, range(12)))
        assert ex.stats.evictions == 0
        assert ex.stats.as_dict()["evictions"] == 0


class TestWorkersAndModes:
    def test_parallel_matches_inline(self):
        jobs = jobs_for_offsets(FIG2_CONFIG, 1, 7, range(12))
        inline = SweepExecutor(workers=1).run_many(jobs)
        parallel = SweepExecutor(workers=2).run_many(jobs)
        assert [o.bandwidth for o in inline] == [o.bandwidth for o in parallel]
        assert [o.grants for o in inline] == [o.grants for o in parallel]

    def test_inline_path_is_one_batch_call(self):
        # Workers=1 hands the whole deduped batch to the backend's
        # run_batch in a single call (shared per-shape tables).
        from repro.runner import executor as executor_mod

        calls: list[int] = []
        original = executor_mod._execute_payload_batch

        def spy(args):
            calls.append(len(args[0]))
            return original(args)

        jobs = jobs_for_offsets(FIG2_CONFIG, 1, 7, range(6))
        try:
            executor_mod._execute_payload_batch = spy
            outs = SweepExecutor(workers=1).run_many(jobs)
        finally:
            executor_mod._execute_payload_batch = original
        assert calls == [len({j.cache_key() for j in jobs})]
        direct = [run(j) for j in jobs]
        assert [o.bandwidth for o in outs] == [o.bandwidth for o in direct]

    def test_pool_chunks_cover_awkward_batch_sizes(self):
        # Regression for the chunksize math: ceil division (the old
        # floor division degenerated to single-job chunks, one pickle
        # round trip each).  An odd-sized batch over several workers
        # must come back complete and in order.
        jobs = jobs_for_offsets(MemoryConfig(banks=13, bank_cycle=4), 1, 3, range(13))
        pooled = SweepExecutor(workers=3).run_many(jobs)
        direct = [run(j) for j in jobs]
        assert [o.grants for o in pooled] == [o.grants for o in direct]
        assert [o.bandwidth for o in pooled] == [o.bandwidth for o in direct]

    def test_backend_override(self):
        ex = SweepExecutor(backend="fast")
        out = ex.run_one(_job())
        # executor outcomes are rebuilt from cache payloads; the tag
        # still records which backend produced the numbers
        assert out.backend == "cache:fast"
        ref = SweepExecutor().run_one(_job())
        assert out.bandwidth == ref.bandwidth

    def test_trace_jobs_bypass_cache(self):
        job = SimJob.from_specs(
            CFG, [(0, 1), (5, 7)], steady=False, cycles=20, trace=True
        )
        ex = SweepExecutor()
        out = ex.run_many([job, job])
        assert ex.stats.executed == 2  # never cached
        assert all(o.result is not None for o in out)
        assert len(ex) == 0


class TestChunkSize:
    def test_base_split_is_four_chunks_per_worker(self):
        from repro.runner.executor import _chunk_size

        assert _chunk_size(100, 4, 1) == 7  # ceil(100 / 16)
        assert _chunk_size(3, 4, 1) == 1  # never zero

    def test_preferred_chunk_widens_the_split(self):
        from repro.runner.executor import _chunk_size

        # A batching backend asks for big chunks and gets them...
        assert _chunk_size(100, 4, 4096) == 25  # ceil(100 / 4)
        # ...capped at one chunk per worker (all workers stay busy).
        assert _chunk_size(8192, 4, 4096) == 2048
        # A huge batch already exceeds the hint: the base split stands.
        assert _chunk_size(100_000, 4, 4096) == 6250
        # A modest hint below the base split changes nothing.
        assert _chunk_size(100, 4, 2) == 7

    def test_backend_hint_resolution(self):
        from repro.runner.executor import _preferred_chunk

        assert _preferred_chunk("batch") >= 1024
        assert _preferred_chunk("reference") == 1

    def test_batch_backend_pooled_sweep_matches_inline(self):
        jobs = jobs_for_offsets(FIG2_CONFIG, 1, 7, range(12))
        inline = SweepExecutor(backend="batch", workers=1).run_many(jobs)
        pooled = SweepExecutor(backend="batch", workers=2).run_many(jobs)
        direct = [run(j) for j in jobs]
        assert [o.bandwidth for o in inline] == [o.bandwidth for o in direct]
        assert [o.grants for o in pooled] == [o.grants for o in direct]

    def test_clear(self):
        ex = SweepExecutor()
        ex.run_one(_job())
        assert len(ex) == 1
        ex.clear()
        assert len(ex) == 0


def test_default_executor_is_process_wide():
    assert default_executor() is default_executor()
