"""SimJob construction, validation, canonicalization and cache identity."""

from __future__ import annotations

import pytest

from repro.memory.config import MemoryConfig
from repro.runner import SimJob, jobs_for_offsets

CFG = MemoryConfig(banks=12, bank_cycle=3)


class TestConstruction:
    def test_from_specs_reduces_modulo_m(self):
        job = SimJob.from_specs(CFG, [(12, 13), (-1, 25)])
        assert job.streams == ((0, 1), (11, 1))

    def test_from_specs_default_cpus(self):
        job = SimJob.from_specs(CFG, [(0, 1), (0, 2), (0, 3)])
        assert job.cpus == (0, 1, 2)

    def test_carries_memory_shape(self):
        cfg = MemoryConfig(banks=16, bank_cycle=4, sections=4)
        job = SimJob.from_specs(cfg, [(0, 1)])
        assert job.config == cfg
        assert job.effective_sections == 4
        assert job.n_ports == 1

    def test_hashable_and_frozen(self):
        a = SimJob.from_specs(CFG, [(0, 1)])
        b = SimJob.from_specs(CFG, [(0, 1)])
        assert a == b and hash(a) == hash(b)
        assert {a: "x"}[b] == "x"
        with pytest.raises(AttributeError):
            a.banks = 13

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(streams=(), cpus=()),
            dict(streams=((0, 1),), cpus=(0, 1)),
            dict(streams=((12, 1),), cpus=(0,)),  # unreduced start
            dict(streams=((0, -1),), cpus=(0,)),  # unreduced stride
            dict(streams=((0, 1),), cpus=(-1,)),
            dict(streams=((0, 1),), cpus=(0,), steady=True, cycles=10),
            dict(streams=((0, 1),), cpus=(0,), steady=False),
            dict(streams=((0, 1),), cpus=(0,), max_cycles=0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SimJob(banks=12, bank_cycle=3, **kwargs)


class TestCanonicalization:
    def test_translation_collapses(self):
        a = SimJob.from_specs(CFG, [(0, 1), (5, 7)])
        b = SimJob.from_specs(CFG, [(3, 1), (8, 7)])  # both starts +3
        assert a.canonical() == b.canonical()
        assert a.cache_key() == b.cache_key()

    def test_unit_renumbering_collapses(self):
        # j -> 5j (gcd(5, 12) = 1) maps strides 1,7 to 5,11 and the
        # relative start 5 to 25 % 12 = 1.
        a = SimJob.from_specs(CFG, [(0, 1), (5, 7)])
        b = SimJob.from_specs(CFG, [(0, 5), (25, 35)])
        assert a.cache_key() == b.cache_key()

    def test_distinct_orbits_stay_distinct(self):
        a = SimJob.from_specs(CFG, [(0, 1), (0, 7)])
        b = SimJob.from_specs(CFG, [(0, 1), (1, 7)])
        assert a.cache_key() != b.cache_key()

    def test_consecutive_sections_block_renumbering(self):
        cfg = MemoryConfig(
            banks=12, bank_cycle=3, sections=4, section_mapping="consecutive"
        )
        job = SimJob.from_specs(cfg, [(3, 5)])
        # canonical() must not renumber: only field normalisation happens.
        assert job.canonical().streams == job.streams

    def test_canonical_normalises_cache_irrelevant_fields(self):
        job = SimJob.from_specs(CFG, [(0, 1)], max_cycles=77)
        c = job.canonical()
        assert c.max_cycles == 1_000_000
        assert c.sections == CFG.effective_sections
        assert not c.trace

    def test_intra_priority_none_is_not_named_rule(self):
        # None shares one rule instance between conflict kinds; naming
        # the rule twice makes two instances — different simulated state.
        shared = SimJob.from_specs(CFG, [(0, 1), (0, 2)], priority="lru")
        named = SimJob.from_specs(
            CFG, [(0, 1), (0, 2)], priority="lru", intra_priority="lru"
        )
        assert shared.cache_key() != named.cache_key()

    def test_mode_in_cache_key(self):
        steady = SimJob.from_specs(CFG, [(0, 1)])
        fixed = SimJob.from_specs(CFG, [(0, 1)], steady=False, cycles=100)
        assert steady.cache_key() != fixed.cache_key()


class TestJobsForOffsets:
    def test_shapes(self):
        jobs = jobs_for_offsets(CFG, 1, 7, range(12))
        assert len(jobs) == 12
        assert all(j.cpus == (0, 1) for j in jobs)
        assert [j.streams[1][0] for j in jobs] == list(range(12))

    def test_same_cpu(self):
        (job,) = jobs_for_offsets(CFG, 1, 7, [3], same_cpu=True)
        assert job.cpus == (0, 0)


class TestPolicyFields:
    def test_specs_validated_at_construction(self):
        with pytest.raises(ValueError, match="invalid priority spec"):
            SimJob.from_specs(CFG, [(0, 1)], priority="block-cyclic:0")
        with pytest.raises(ValueError, match="invalid arbiter spec"):
            SimJob.from_specs(CFG, [(0, 1), (0, 2)], arbiter="wfq:1")
        with pytest.raises(ValueError, match="invalid regulation spec"):
            SimJob.from_specs(CFG, [(0, 1)], regulate=["stream=1"])
        with pytest.raises(ValueError, match="out of range"):
            SimJob.from_specs(CFG, [(0, 1)], regulate=["stream:1=1/4"])
        with pytest.raises(ValueError, match="from_specs"):
            SimJob(banks=12, bank_cycle=3, streams=((0, 1),), cpus=(0,),
                   regulate="stream=1/4")  # type: ignore[arg-type]

    def test_default_policy_leaves_cache_key_unchanged(self):
        # Pre-arbiter cache keys must stay byte-identical.
        job = SimJob.from_specs(CFG, [(0, 1), (5, 7)])
        assert "arb:" not in job.cache_key()
        assert "reg:" not in job.cache_key()

    def test_regulation_order_is_canonicalised(self):
        a = SimJob.from_specs(
            CFG, [(0, 1), (0, 2)],
            regulate=["stream:1=1/4", "bank=2/3", "stream:0=1/2"],
        )
        b = SimJob.from_specs(
            CFG, [(0, 1), (0, 2)],
            regulate=["bank=2/3", "stream:0=1/2", "stream:1=1/4"],
        )
        assert a.cache_key() == b.cache_key()
        assert a.canonical().regulate == (
            "bank=2/3", "stream:0=1/2", "stream:1=1/4",
        )

    def test_policy_jobs_get_distinct_cache_keys(self):
        plain = SimJob.from_specs(CFG, [(0, 1), (0, 2)])
        reg = SimJob.from_specs(
            CFG, [(0, 1), (0, 2)], regulate=["stream=1/4"]
        )
        wfq = SimJob.from_specs(CFG, [(0, 1), (0, 2)], arbiter="wfq:2,1")
        keys = {plain.cache_key(), reg.cache_key(), wfq.cache_key()}
        assert len(keys) == 3

    def test_indexed_bank_regulation_blocks_renumbering(self):
        # bank:IDX pins a physical bank, so the Appendix isomorphism no
        # longer maps the regulated system onto itself.
        pinned = SimJob.from_specs(
            CFG, [(3, 5)], regulate=["bank:2=1/4"]
        )
        assert pinned.canonical().streams == pinned.streams
        uniform = SimJob.from_specs(CFG, [(3, 5)], regulate=["bank=1/4"])
        assert uniform.canonical().streams == (
            SimJob.from_specs(CFG, [(3, 5)]).canonical().streams
        )
