"""Shared regime-observation helpers (deduped from sim.pairs/sim.multi)."""

from __future__ import annotations

import pytest

from repro.runner.regime import (
    ObservedRegime,
    full_rate_streams,
    is_conflict_free,
    observe_pair_regime,
)


class TestFullRate:
    def test_counts_streams_at_one_grant_per_clock(self):
        assert full_rate_streams(12, (12, 12, 7)) == 2
        assert full_rate_streams(6, (6,)) == 1
        assert full_rate_streams(6, (5, 3)) == 0

    def test_conflict_free_means_all_full_rate(self):
        assert is_conflict_free(12, (12, 12))
        assert not is_conflict_free(12, (12, 7))


class TestPairRegime:
    def test_conflict_free(self):
        assert observe_pair_regime(6, (6, 6)) is ObservedRegime.CONFLICT_FREE

    def test_barrier_on_2(self):
        assert observe_pair_regime(6, (6, 1)) is ObservedRegime.BARRIER_ON_2

    def test_barrier_on_1(self):
        assert observe_pair_regime(5, (2, 5)) is ObservedRegime.BARRIER_ON_1

    def test_mutual(self):
        assert observe_pair_regime(5, (3, 4)) is ObservedRegime.MUTUAL

    def test_requires_two_streams(self):
        with pytest.raises(ValueError):
            observe_pair_regime(5, (5,))


def test_sim_reexports_are_the_same_objects():
    # The sim front ends re-export the shared enum and delegate their
    # legacy helpers here; observers from either module must agree.
    from repro.sim import pairs

    assert pairs.ObservedRegime is ObservedRegime
    assert pairs._observe_regime(6, (6, 1)) is ObservedRegime.BARRIER_ON_2
