"""Shared regime-observation helpers (deduped from sim.pairs/sim.multi)."""

from __future__ import annotations

import pytest

from repro.runner.regime import (
    ObservedRegime,
    full_rate_streams,
    is_conflict_free,
    observe_pair_regime,
)


class TestFullRate:
    def test_counts_streams_at_one_grant_per_clock(self):
        assert full_rate_streams(12, (12, 12, 7)) == 2
        assert full_rate_streams(6, (6,)) == 1
        assert full_rate_streams(6, (5, 3)) == 0

    def test_conflict_free_means_all_full_rate(self):
        assert is_conflict_free(12, (12, 12))
        assert not is_conflict_free(12, (12, 7))


class TestPairRegime:
    def test_conflict_free(self):
        assert observe_pair_regime(6, (6, 6)) is ObservedRegime.CONFLICT_FREE

    def test_barrier_on_2(self):
        assert observe_pair_regime(6, (6, 1)) is ObservedRegime.BARRIER_ON_2

    def test_barrier_on_1(self):
        assert observe_pair_regime(5, (2, 5)) is ObservedRegime.BARRIER_ON_1

    def test_mutual(self):
        assert observe_pair_regime(5, (3, 4)) is ObservedRegime.MUTUAL

    def test_requires_two_streams(self):
        with pytest.raises(ValueError):
            observe_pair_regime(5, (5,))


class TestDegenerateJobs:
    """Edge-of-parameter-space jobs observed through the runner layer.

    Degenerate strides (d ≡ 0 mod m), a single port (n_c = 1), and a
    single bank (m = 1) all collapse the steady state to its smallest
    possible period; the regime observers and both backends must agree
    on these boundary cases.
    """

    def _run_both(self, banks, bank_cycle, specs):
        from repro.memory.config import MemoryConfig
        from repro.runner import SimJob, run

        job = SimJob.from_specs(
            MemoryConfig(banks=banks, bank_cycle=bank_cycle), specs
        )
        ref = run(job, backend="reference")
        fast = run(job, backend="fast")
        assert (ref.bandwidth, ref.period, ref.grants) == (
            fast.bandwidth,
            fast.period,
            fast.grants,
        ), "backends disagree on a degenerate job"
        return ref

    def test_zero_stride_solo_hits_one_bank_every_cycle(self):
        # d = 0: every access lands on the same bank, so the stream is
        # pinned to the bank recovery rate 1/n_c regardless of m.
        from fractions import Fraction

        from repro.core.single import predict_single

        out = self._run_both(banks=8, bank_cycle=4, specs=[(0, 0)])
        assert out.bandwidth == Fraction(1, 4)
        assert out.period == 4
        assert out.grants == (1,)
        assert not is_conflict_free(out.period, out.grants)
        assert full_rate_streams(out.period, out.grants) == 0
        assert predict_single(8, 0, 4).bandwidth == out.bandwidth

    def test_zero_stride_pair_same_bank_is_barrier(self):
        # Both streams camp on bank 0; the second never gets a grant in
        # steady state, which the pair observer reads as a barrier.
        from fractions import Fraction

        out = self._run_both(banks=8, bank_cycle=4, specs=[(0, 0), (0, 0)])
        assert out.bandwidth == Fraction(1, 4)
        assert out.grants == (1, 0)
        regime = observe_pair_regime(out.period, out.grants)
        assert regime is ObservedRegime.MUTUAL

    def test_zero_stride_pair_disjoint_banks_do_not_interact(self):
        # Degenerate strides on different banks never collide; each
        # stream independently runs at the bank recovery rate.
        from fractions import Fraction

        out = self._run_both(banks=8, bank_cycle=4, specs=[(0, 0), (4, 0)])
        assert out.bandwidth == Fraction(1, 2)
        assert out.grants == (1, 1)
        assert full_rate_streams(out.period, out.grants) == 0

    def test_single_bank_pair_serialises_everything(self):
        # m = 1: one bank serves all traffic, so total bandwidth is the
        # recovery rate and only the first port ever wins arbitration.
        from fractions import Fraction

        out = self._run_both(banks=1, bank_cycle=3, specs=[(0, 0), (0, 0)])
        assert out.bandwidth == Fraction(1, 3)
        assert out.grants == (1, 0)
        assert observe_pair_regime(out.period, out.grants) is (
            ObservedRegime.MUTUAL
        )

    def test_single_cycle_bank_never_conflicts_solo(self):
        # n_c = 1: a bank recovers instantly, so a solo unit-stride
        # stream is conflict-free at full rate.
        from fractions import Fraction

        from repro.core.single import predict_single

        out = self._run_both(banks=8, bank_cycle=1, specs=[(0, 1)])
        assert out.bandwidth == Fraction(1)
        assert out.grants == (out.period,)
        assert is_conflict_free(out.period, out.grants)
        assert full_rate_streams(out.period, out.grants) == 1
        assert predict_single(8, 1, 1).bandwidth == Fraction(1)

    def test_single_cycle_bank_pair_is_conflict_free(self):
        # With n_c = 1 even two identical streams on the same banks
        # interleave without stalls once the pipeline fills.
        from fractions import Fraction

        out = self._run_both(banks=8, bank_cycle=1, specs=[(0, 1), (0, 1)])
        assert out.bandwidth == Fraction(2)
        regime = observe_pair_regime(out.period, out.grants)
        assert regime is ObservedRegime.CONFLICT_FREE

    def test_single_bank_single_cycle_pair(self):
        # m = 1 and n_c = 1 together: period collapses to one clock and
        # the lone bank grants exactly one port per clock.
        from fractions import Fraction

        out = self._run_both(banks=1, bank_cycle=1, specs=[(0, 0), (0, 0)])
        assert out.bandwidth == Fraction(1)
        assert out.period == 1
        assert out.grants == (1, 0)
        assert observe_pair_regime(out.period, out.grants) is (
            ObservedRegime.BARRIER_ON_2
        )


def test_sim_reexports_are_the_same_objects():
    # The sim front ends re-export the shared enum and delegate their
    # legacy helpers here; observers from either module must agree.
    from repro.sim import pairs

    assert pairs.ObservedRegime is ObservedRegime
    assert pairs._observe_regime(6, (6, 1)) is ObservedRegime.BARRIER_ON_2
