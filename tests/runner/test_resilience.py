"""Fault-tolerant sweep execution: retry, bisection, pool recovery,
crash-safe caching.  Companion to docs/RUNNER.md "Failure semantics"."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.memory.config import MemoryConfig
from repro.obs import capture_metrics, metric_names
from repro.obs import names as obs_names
from repro.runner import (
    FailedJobError,
    FailedOutcome,
    RetryPolicy,
    SweepExecutor,
    SweepFailureError,
    jobs_for_offsets,
)
from repro.runner import backends as backends_mod
from repro.runner import executor as executor_mod
from repro.runner.backends import FastBackend
from repro.runner.resilience import (
    CHAOS_HANG_MS_ENV,
    CHAOS_HANG_ONCE_DIR_ENV,
    CHAOS_ONCE_DIR_ENV,
    CHAOS_RATE_ENV,
)

CFG = MemoryConfig(banks=12, bank_cycle=3)

#: A retry policy that never sleeps (tests should not wait on backoff).
FAST = RetryPolicy(max_retries=2, backoff_base_ms=0)


def _jobs():
    return jobs_for_offsets(CFG, 1, 7, range(12))


def _clean_outcomes():
    return SweepExecutor(backend="fast").run_many(_jobs())


def _install_backend(monkeypatch, backend):
    """Register an ad-hoc backend instance under its ``name``."""
    monkeypatch.setitem(backends_mod._INSTANCES, backend.name, backend)


class FlakyBackend(FastBackend):
    """Raises on the first ``fail_first`` run_batch calls, then works."""

    name = "flaky"

    def __init__(self, fail_first: int = 2) -> None:
        super().__init__()
        self.fail_first = fail_first
        self.calls = 0

    def run_batch(self, jobs):
        self.calls += 1
        if self.calls <= self.fail_first:
            raise RuntimeError("transient worker failure")
        return super().run_batch(jobs)


class PoisonBackend(FastBackend):
    """Raises whenever a specific poisoned job is in the batch."""

    name = "poison"

    def __init__(self, poison_key: str) -> None:
        super().__init__()
        self.poison_key = poison_key
        self.armed = True

    def run_batch(self, jobs):
        if self.armed and any(
            j.cache_key() == self.poison_key for j in jobs
        ):
            raise RuntimeError("poisoned job")
        return super().run_batch(jobs)


# ----------------------------------------------------------------------
# Policy object
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_backoff_schedule_is_deterministic_doubling(self):
        p = RetryPolicy(max_retries=4, backoff_base_ms=10)
        assert p.schedule_ms() == (10, 20, 40, 80)
        assert p.backoff_ms(1) == 10
        assert p.backoff_ms(3) == 40

    def test_zero_base_disables_waiting(self):
        assert RetryPolicy(backoff_base_ms=0).schedule_ms() == (0, 0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"backoff_base_ms": -1},
            {"chunk_timeout": 0},
            {"chunk_timeout": -1.0},
            {"degrade_after": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_attempts_count_from_one(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff_ms(0)


class TestFailedOutcome:
    def test_numeric_access_raises(self):
        out = FailedOutcome(job=_jobs()[0], error="boom", attempts=3)
        assert out.failed is True
        for prop in (
            "bandwidth", "period", "grants", "steady_start", "cycles",
            "result", "bandwidth_float", "full_rate_streams",
            "conflict_free", "pair_regime",
        ):
            with pytest.raises(FailedJobError, match="boom"):
                getattr(out, prop)

    def test_real_outcomes_report_not_failed(self):
        out = SweepExecutor(backend="fast").run_one(_jobs()[0])
        assert out.failed is False

    def test_describe_mentions_error_and_attempts(self):
        out = FailedOutcome(job=_jobs()[0], error="boom", attempts=3)
        assert "boom" in out.describe()
        assert "3 attempt(s)" in out.describe()


# ----------------------------------------------------------------------
# Inline recovery (workers=1)
# ----------------------------------------------------------------------
class TestInlineRecovery:
    def test_transient_failure_retried_to_success(self, monkeypatch):
        _install_backend(monkeypatch, FlakyBackend(fail_first=2))
        ex = SweepExecutor(backend="flaky", retry=FAST)
        outs = ex.run_many(_jobs())
        clean = _clean_outcomes()
        assert [o.bandwidth for o in outs] == [o.bandwidth for o in clean]
        assert ex.stats.retries == 2
        assert ex.stats.failures == 0
        assert ex.stats.recovered == ex.stats.executed

    def test_without_policy_first_error_propagates(self, monkeypatch):
        _install_backend(monkeypatch, FlakyBackend(fail_first=1))
        ex = SweepExecutor(backend="flaky")
        with pytest.raises(RuntimeError, match="transient"):
            ex.run_many(_jobs())

    def test_bisection_isolates_the_poisoned_job(self, monkeypatch):
        jobs = _jobs()
        # The representative actually dispatched for each canonical key.
        fresh: dict[str, object] = {}
        for job in jobs:
            fresh.setdefault(job.cache_key(), job)
        poison_key = sorted(fresh)[len(fresh) // 2]
        _install_backend(monkeypatch, PoisonBackend(poison_key))
        ex = SweepExecutor(backend="poison", retry=FAST)
        outs = ex.run_many(jobs)
        clean = _clean_outcomes()
        assert ex.stats.failures == 1
        for out, ref, job in zip(outs, clean, jobs):
            if job.cache_key() == poison_key:
                assert out.failed is True
                assert out.job is job
                with pytest.raises(FailedJobError):
                    out.bandwidth
            else:
                assert out.failed is False
                assert out.bandwidth == ref.bandwidth
                assert out.grants == ref.grants

    def test_failed_jobs_are_not_memoized(self, monkeypatch):
        job = _jobs()[0]
        backend = PoisonBackend(job.cache_key())
        _install_backend(monkeypatch, backend)
        ex = SweepExecutor(backend="poison", retry=FAST)
        assert ex.run_one(job).failed is True
        executed = ex.stats.executed
        backend.armed = False  # the poison clears: a re-run must re-try
        out = ex.run_one(job)
        assert out.failed is False
        assert ex.stats.executed == executed + 1

    def test_strict_policy_raises_and_persists_survivors(
        self, monkeypatch, tmp_path
    ):
        jobs = _jobs()
        fresh: dict[str, object] = {}
        for job in jobs:
            fresh.setdefault(job.cache_key(), job)
        poison_key = sorted(fresh)[0]
        _install_backend(monkeypatch, PoisonBackend(poison_key))
        path = tmp_path / "outcomes.json"
        ex = SweepExecutor(
            backend="poison", cache_path=path,
            retry=RetryPolicy(max_retries=1, backoff_base_ms=0, strict=True),
        )
        with pytest.raises(SweepFailureError) as info:
            ex.run_many(jobs)
        assert len(info.value.failures) == 1
        assert info.value.failures[0].job.cache_key() == poison_key
        # The healthy work of the batch reached the disk cache.
        entries = json.loads(path.read_text())["entries"]
        assert len(entries) == len(fresh) - 1
        assert poison_key not in entries


# ----------------------------------------------------------------------
# Process-pool recovery (workers > 1, chaos-injected crashes)
# ----------------------------------------------------------------------
class TestPoolRecovery:
    def test_worker_crash_recovers_bit_identical(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv(CHAOS_ONCE_DIR_ENV, str(tmp_path / "once"))
        (tmp_path / "once").mkdir()
        ex = SweepExecutor(backend="fast", workers=2, retry=FAST)
        outs = ex.run_many(_jobs())
        clean = _clean_outcomes()
        assert [o.bandwidth for o in outs] == [o.bandwidth for o in clean]
        assert [o.grants for o in outs] == [o.grants for o in clean]
        assert ex.stats.failures == 0
        assert ex.stats.retries > 0
        assert ex.stats.recovered > 0

    def test_persistent_crashes_degrade_to_inline(self, monkeypatch):
        monkeypatch.setenv(CHAOS_RATE_ENV, "1.0")
        ex = SweepExecutor(
            backend="fast", workers=2,
            retry=RetryPolicy(
                max_retries=1, backoff_base_ms=0, degrade_after=1
            ),
        )
        outs = ex.run_many(_jobs())
        clean = _clean_outcomes()
        assert [o.bandwidth for o in outs] == [o.bandwidth for o in clean]
        assert ex.stats.failures == 0

    def test_hung_chunk_times_out_and_recovers(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CHAOS_HANG_ONCE_DIR_ENV, str(tmp_path / "hang"))
        monkeypatch.setenv(CHAOS_HANG_MS_ENV, "30000")
        (tmp_path / "hang").mkdir()
        ex = SweepExecutor(
            backend="fast", workers=2,
            retry=RetryPolicy(
                max_retries=2, backoff_base_ms=0, chunk_timeout=0.25
            ),
        )
        outs = ex.run_many(_jobs())
        clean = _clean_outcomes()
        assert [o.bandwidth for o in outs] == [o.bandwidth for o in clean]
        assert ex.stats.failures == 0
        assert ex.stats.retries > 0

    def test_chaos_never_fires_in_the_orchestrator(self, monkeypatch):
        # Inline execution with a 100% crash rate must be unaffected:
        # the hook only fires inside multiprocessing workers.
        monkeypatch.setenv(CHAOS_RATE_ENV, "1.0")
        ex = SweepExecutor(backend="fast")
        outs = ex.run_many(_jobs())
        assert len(outs) == len(_jobs())


# ----------------------------------------------------------------------
# Crash-safe on-disk cache
# ----------------------------------------------------------------------
class TestCrashSafeCache:
    def _quarantined(self, path):
        return path.with_suffix(path.suffix + ".corrupt")

    def test_corrupt_json_quarantined(self, tmp_path):
        path = tmp_path / "outcomes.json"
        path.write_text("{not json at all")
        with pytest.warns(RuntimeWarning, match="unreadable"):
            ex = SweepExecutor(cache_path=path)
        assert len(ex) == 0
        assert not path.exists()
        assert self._quarantined(path).exists()

    def test_truncated_file_quarantined(self, tmp_path):
        path = tmp_path / "outcomes.json"
        with SweepExecutor(backend="fast", cache_path=path) as ex:
            ex.run_many(_jobs())
        path.write_text(path.read_text()[: path.stat().st_size // 2])
        with pytest.warns(RuntimeWarning):
            ex = SweepExecutor(cache_path=path)
        assert len(ex) == 0
        assert self._quarantined(path).exists()

    def test_non_object_entries_quarantined(self, tmp_path):
        path = tmp_path / "outcomes.json"
        path.write_text(json.dumps({"version": 1, "entries": [1, 2]}))
        with pytest.warns(RuntimeWarning, match="entries"):
            ex = SweepExecutor(cache_path=path)
        assert len(ex) == 0
        assert self._quarantined(path).exists()

    def test_quarantine_then_rebuild_roundtrips(self, tmp_path):
        path = tmp_path / "outcomes.json"
        path.write_text("garbage")
        with pytest.warns(RuntimeWarning):
            with SweepExecutor(backend="fast", cache_path=path) as ex:
                ex.run_many(_jobs())
        warm = SweepExecutor(backend="fast", cache_path=path)
        warm.run_many(_jobs())
        assert warm.stats.executed == 0
        assert warm.stats.hits > 0

    def test_flush_preserves_evicted_entries(self, tmp_path):
        # Regression: flush() used to write the memo alone, deleting
        # every LRU-evicted entry from disk.
        path = tmp_path / "outcomes.json"
        jobs = _jobs()
        ex = SweepExecutor(
            backend="fast", cache_path=path, max_memo=2, flush_every=None
        )
        first = ex.run_one(jobs[0])
        ex.flush()
        ex.run_many(jobs[1:])  # evicts jobs[0] from the tiny memo
        ex.flush()
        entries = json.loads(path.read_text())["entries"]
        assert jobs[0].cache_key() in entries
        warm = SweepExecutor(backend="fast", cache_path=path)
        out = warm.run_one(jobs[0])
        assert warm.stats.executed == 0
        assert out.bandwidth == first.bandwidth

    def test_flush_merges_sibling_executor_work(self, tmp_path):
        path = tmp_path / "outcomes.json"
        jobs = _jobs()
        a = SweepExecutor(backend="fast", cache_path=path, flush_every=None)
        b = SweepExecutor(backend="fast", cache_path=path, flush_every=None)
        a.run_one(jobs[0])
        b.run_one(jobs[5])
        a.flush()
        b.flush()  # must union with a's entry, not clobber it
        warm = SweepExecutor(backend="fast", cache_path=path)
        warm.run_many([jobs[0], jobs[5]])
        assert warm.stats.executed == 0

    def test_auto_flush_is_on_by_default(self, tmp_path):
        path = tmp_path / "outcomes.json"
        ex = SweepExecutor(backend="fast", cache_path=path)
        ex.run_many(_jobs())
        # No flush()/context exit — the chunk auto-flushed on completion.
        entries = json.loads(path.read_text())["entries"]
        assert len(entries) == len(ex)

    def test_flush_every_validation(self):
        with pytest.raises(ValueError):
            SweepExecutor(flush_every=0)

    def test_kill_mid_sweep_loses_at_most_one_chunk(self, tmp_path):
        # A subprocess sweeps batch 1 (auto-flushed chunk by chunk),
        # then dies hard mid-batch-2 with no chance to flush or exit
        # cleanly.  The cache must come back loadable with batch 1.
        cache = tmp_path / "outcomes.json"
        script = textwrap.dedent(
            f"""
            import os
            from repro.memory.config import MemoryConfig
            from repro.runner import SweepExecutor, jobs_for_offsets
            from repro.runner import backends

            cfg = MemoryConfig(banks=12, bank_cycle=3)

            class DyingBackend(backends.FastBackend):
                name = "dying"
                def run_batch(self, jobs):
                    if any(j.streams[1][1] == 11 for j in jobs):
                        os._exit(9)  # simulated power cut, no cleanup
                    return super().run_batch(jobs)

            backends._INSTANCES["dying"] = DyingBackend()
            ex = SweepExecutor(backend="dying", cache_path={str(cache)!r})
            ex.run_many(jobs_for_offsets(cfg, 1, 7, range(12)))
            ex.run_many(jobs_for_offsets(cfg, 1, 11, range(12)))
            os._exit(7)  # unreachable: the batch above dies
            """
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), "src") if p
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            env=env,
            timeout=120,
        )
        assert proc.returncode == 9
        warm = SweepExecutor(backend="fast", cache_path=cache)
        warm.run_many(jobs_for_offsets(CFG, 1, 7, range(12)))
        assert warm.stats.executed == 0  # batch 1 fully recovered
        assert warm.stats.hits == 12

    def test_flusher_killed_mid_write_never_tears_the_cache(
        self, tmp_path
    ):
        # A subprocess flushes the same cache file in a tight loop and
        # is SIGKILLed while doing so.  Because each flush writes a
        # *unique* temp file published via os.replace, the kill can
        # land anywhere — mid-temp-write included — and the cache file
        # must stay a complete, loadable snapshot, and the stray temp
        # must never collide with a later flusher.
        import signal
        import time

        cache = tmp_path / "outcomes.json"
        script = textwrap.dedent(
            f"""
            import sys
            from repro.memory.config import MemoryConfig
            from repro.runner import SweepExecutor, jobs_for_offsets

            cfg = MemoryConfig(banks=12, bank_cycle=3)
            ex = SweepExecutor(
                backend="fast", cache_path={str(cache)!r},
                flush_every=None,
            )
            for d1, d2 in [(1, 7), (2, 6), (3, 4), (1, 11)]:
                ex.run_many(jobs_for_offsets(cfg, d1, d2, range(12)))
            while True:  # flush forever until killed
                ex._dirty = True
                ex.flush()
                print("F", flush=True)
            """
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), "src") if p
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", script],
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            env=env,
            stdout=subprocess.PIPE,
        )
        try:
            assert proc.stdout is not None
            proc.stdout.read(8)  # several flushes have happened
            time.sleep(0.05)  # land somewhere inside a later flush
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == -signal.SIGKILL

        import warnings as warnings_mod

        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")  # any quarantine fails
            warm = SweepExecutor(backend="fast", cache_path=cache)
        assert len(warm) > 0
        warm.run_many(jobs_for_offsets(CFG, 1, 7, range(12)))
        assert warm.stats.executed == 0  # every batch survived the kill
        # A later flusher is unaffected by any stray unique temp file.
        warm.run_many(jobs_for_offsets(CFG, 2, 10, range(6)))
        warm.flush()
        entries = json.loads(cache.read_text())["entries"]
        assert len(entries) == len(warm)


# ----------------------------------------------------------------------
# The executor's sharp-edge regressions
# ----------------------------------------------------------------------
class TestFalsyPayloadRegression:
    def test_empty_payload_resolves_from_its_source(self, monkeypatch):
        # `ran.get(key) or held.get(key) or memo[key]` used to fall
        # through on a falsy-but-present payload and KeyError on the
        # memo.  Membership checks must resolve {} from `ran`.
        job = _jobs()[0]
        seen: list[dict] = []

        class StubOutcome:
            @staticmethod
            def from_payload(job, payload):
                seen.append(payload)
                return payload

        ex = SweepExecutor(backend="fast", max_memo=1)
        monkeypatch.setattr(
            ex, "_execute",
            lambda fresh, backend: ({k: {} for k in fresh}, {}),
        )
        monkeypatch.setattr(executor_mod, "SimOutcome", StubOutcome)
        outs = ex.run_many([job])
        assert outs == [{}]
        assert seen == [{}]


# ----------------------------------------------------------------------
# Instrumentation of the failure path
# ----------------------------------------------------------------------
class TestFailureMetrics:
    def test_flaky_run_emits_only_contract_names(self, monkeypatch):
        _install_backend(monkeypatch, FlakyBackend(fail_first=2))
        ex = SweepExecutor(backend="flaky", retry=FAST)
        with capture_metrics() as reg:
            ex.run_many(_jobs())
        emitted = {m.name for m in reg.collect()}
        assert emitted <= metric_names(), emitted - metric_names()
        retries = reg.get(obs_names.EXECUTOR_RETRIES)
        assert retries is not None and retries.value == ex.stats.retries
        recovered = reg.get(obs_names.EXECUTOR_RECOVERED)
        assert recovered is not None
        assert recovered.value == ex.stats.recovered

    def test_quarantine_counter(self, tmp_path):
        path = tmp_path / "outcomes.json"
        path.write_text("garbage")
        with capture_metrics() as reg:
            with pytest.warns(RuntimeWarning):
                SweepExecutor(cache_path=path)
        quarantined = reg.get(obs_names.EXECUTOR_CACHE_QUARANTINED)
        assert quarantined is not None and quarantined.value == 1

    def test_failure_counter(self, monkeypatch):
        job = _jobs()[0]
        _install_backend(monkeypatch, PoisonBackend(job.cache_key()))
        ex = SweepExecutor(backend="poison", retry=FAST)
        with capture_metrics() as reg:
            ex.run_one(job)
        failures = reg.get(obs_names.EXECUTOR_FAILURES)
        assert failures is not None and failures.value == 1
