"""The scheduler split: chunk planning, work stealing, placement.

Companion to docs/RUNNER.md "Scheduling".  Scheduler *equivalence*
(bit-identical outcomes across inline/pool/shard) lives in
tests/property/test_scheduler_equivalence.py.
"""

from __future__ import annotations

from collections import deque

import pytest

from repro.memory.config import MemoryConfig
from repro.obs import capture_metrics, capture_spans
from repro.obs import names as obs_names
from repro.runner import (
    ChunkRunner,
    InlineScheduler,
    PoolScheduler,
    ShardScheduler,
    SweepExecutor,
    jobs_for_offsets,
)
from repro.runner.executor import ExecutorStats
from repro.runner.scheduling import _ChunkTask, chunk_size

CFG = MemoryConfig(banks=12, bank_cycle=3)


def _items(n: int):
    jobs = jobs_for_offsets(CFG, 1, 7, range(n))
    return [(job.cache_key(), job) for job in jobs]


def _runner(backend: str = "fast") -> ChunkRunner:
    return ChunkRunner(
        backend=backend,
        retry=None,
        stats=ExecutorStats(),
        on_chunk=lambda chunk, payloads, ran: ran.update(
            {k: p for (k, _), p in zip(chunk, payloads)}
        ),
    )


class TestChunkSizeBoundaries:
    """The tiny-sweep fix: chunks shrink so no worker sits idle."""

    @pytest.mark.parametrize(
        "n_items,workers,preferred,expected",
        [
            # legacy grid (unchanged by the fix)
            (100, 4, 1, 7),
            (3, 4, 1, 1),
            (100, 4, 4096, 25),
            (8192, 4, 4096, 2048),
            (100_000, 4, 4096, 6250),
            (100, 4, 2, 7),
            # n_items < workers: one job per chunk, never idle workers
            (3, 4, 4096, 1),
            (1, 8, 32, 1),
            (7, 8, 4096, 1),
            # workers <= n_items < workers * preferred: floor division
            (10, 8, 4, 1),
            (5, 4, 4096, 1),
            (9, 4, 32, 2),
            (100, 8, 32, 12),
            # exact boundary n_items == workers * preferred
            (16, 4, 4, 4),
            (15, 4, 4, 3),
            (17, 4, 4, 4),
        ],
    )
    def test_grid(self, n_items, workers, preferred, expected):
        assert chunk_size(n_items, workers, preferred) == expected

    @pytest.mark.parametrize("n_items", [1, 3, 5, 9, 17, 64, 257])
    @pytest.mark.parametrize("workers", [2, 4, 8])
    @pytest.mark.parametrize("preferred", [1, 4, 32, 4096])
    def test_every_worker_gets_a_chunk(self, n_items, workers, preferred):
        size = chunk_size(n_items, workers, preferred)
        assert size >= 1
        n_chunks = -(-n_items // size)
        assert n_chunks >= min(n_items, workers)


class TestPlan:
    def test_empty(self):
        assert _runner().plan([], 4) == []

    def test_inline_is_one_chunk(self):
        items = _items(9)
        assert _runner().plan(items, 1) == [items]

    def test_chunks_partition_in_order(self):
        items = _items(12)
        chunks = _runner().plan(items, 4)
        assert len(chunks) > 1
        assert [pair for chunk in chunks for pair in chunk] == items

    def test_preferred_chunk_caps_by_worker_count(self):
        # fast advertises preferred_chunk=32; 12 items over 4 workers
        # must still fan out (floor 12 // 4 = 3 per chunk).
        chunks = _runner("fast").plan(_items(12), 4)
        assert len(chunks) == 4
        assert all(len(c) == 3 for c in chunks)


class TestPoolStealing:
    def test_steal_splits_largest_clean_chunk(self):
        runner = _runner()
        sched = PoolScheduler(4)
        big, small = _items(8), _items(2)
        queue = deque([_ChunkTask(small), _ChunkTask(big)])
        with capture_metrics() as reg, capture_spans() as rec:
            sched._steal_split(queue, busy=1, runner=runner)
        sizes = sorted(len(t.chunk) for t in queue)
        assert sizes == [2, 4, 4]
        steals = reg.counter(obs_names.SCHED_STEALS, scheduler="pool")
        assert steals.value == 1
        assert any(
            s.name == obs_names.SPAN_EXECUTOR_STEAL for s in rec.spans
        )

    def test_no_steal_when_queue_covers_idle_slots(self):
        runner = _runner()
        queue = deque(_ChunkTask(_items(4)) for _ in range(3))
        PoolScheduler(4)._steal_split(queue, busy=1, runner=runner)
        assert all(len(t.chunk) == 4 for t in queue)

    def test_troubled_and_singleton_chunks_are_never_split(self):
        runner = _runner()
        troubled = _ChunkTask(_items(8), troubled=True)
        single = _ChunkTask(_items(1))
        queue = deque([troubled, single])
        PoolScheduler(8)._steal_split(queue, busy=0, runner=runner)
        assert [len(t.chunk) for t in queue] == [8, 1]


class TestShardStealing:
    def test_idle_shard_takes_from_backlogged_donor(self):
        runner = _runner()
        sched = ShardScheduler(3)
        queues = [
            deque(_ChunkTask(_items(2)) for _ in range(3)),
            deque(),
            deque(),
        ]
        with capture_metrics() as reg:
            sched._steal(queues, busy={0}, runner=runner)
        assert [len(q) for q in queues] == [1, 1, 1]
        steals = reg.counter(obs_names.SCHED_STEALS, scheduler="shard")
        assert steals.value == 2

    def test_busy_shards_do_not_steal(self):
        runner = _runner()
        queues = [deque([_ChunkTask(_items(2))]), deque(), deque()]
        ShardScheduler(3)._steal(queues, busy={1, 2}, runner=runner)
        assert [len(q) for q in queues] == [1, 0, 0]

    def test_idle_donor_keeps_its_only_chunk(self):
        # Shard 0 is idle with one queued chunk: moving it would just
        # relocate the dispatch, so it stays home.
        runner = _runner()
        queues = [deque([_ChunkTask(_items(2))]), deque(), deque()]
        ShardScheduler(3)._steal(queues, busy=set(), runner=runner)
        assert [len(q) for q in queues] == [1, 0, 0]

    def test_busy_donor_loses_its_only_chunk(self):
        runner = _runner()
        queues = [deque([_ChunkTask(_items(2))]), deque()]
        ShardScheduler(2)._steal(queues, busy={0}, runner=runner)
        assert [len(q) for q in queues] == [0, 1]


class TestSchedulerSelection:
    def test_default_resolution(self):
        assert SweepExecutor()._resolve_scheduler().name == "inline"
        assert SweepExecutor(workers=3)._resolve_scheduler().name == "pool"
        ex = SweepExecutor(workers=2, shards=2)
        assert ex._resolve_scheduler().name == "shard"

    def test_explicit_scheduler_name(self):
        ex = SweepExecutor(workers=4, scheduler="inline")
        assert ex._resolve_scheduler().name == "inline"
        assert SweepExecutor(scheduler="shard")._resolve_scheduler().shards == 1

    def test_scheduler_instance_passes_through(self):
        sched = InlineScheduler()
        assert SweepExecutor(scheduler=sched)._resolve_scheduler() is sched

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            SweepExecutor(scheduler="carousel")

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ValueError, match="shard count"):
            SweepExecutor(shards=0)

    def test_chunk_counter_labels_scheduler(self):
        ex = SweepExecutor(backend="fast")
        with capture_metrics() as reg:
            ex.run_many(jobs_for_offsets(CFG, 1, 7, range(6)))
        chunks = reg.counter(obs_names.SCHED_CHUNKS, scheduler="inline")
        assert chunks.value == 1
