"""Hash-partitioned shard execution over the shared result store."""

from __future__ import annotations

from collections import Counter

from repro.memory.config import MemoryConfig
from repro.obs import capture_metrics
from repro.obs import names as obs_names
from repro.runner import (
    ResultStore,
    RetryPolicy,
    SweepExecutor,
    jobs_for_offsets,
    run,
    shard_of,
)
from repro.runner.resilience import CHAOS_ONCE_DIR_ENV

CFG = MemoryConfig(banks=12, bank_cycle=3)

#: A retry policy that never sleeps (tests should not wait on backoff).
FAST = RetryPolicy(max_retries=2, backoff_base_ms=0)


def _jobs():
    return jobs_for_offsets(CFG, 1, 7, range(12))


def _clean_outcomes():
    return SweepExecutor(backend="fast").run_many(_jobs())


class TestShardOf:
    def test_stable_and_in_range(self):
        keys = [job.cache_key() for job in _jobs()]
        for key in keys:
            shard = shard_of(key, 4)
            assert 0 <= shard < 4
            assert shard_of(key, 4) == shard  # deterministic

    def test_partition_covers_all_shards(self):
        keys = [f"key-{i}" for i in range(256)]
        counts = Counter(shard_of(k, 4) for k in keys)
        assert set(counts) == {0, 1, 2, 3}

    def test_single_shard_degenerates(self):
        assert shard_of("anything", 1) == 0


class TestShardedExecution:
    def test_bit_identical_to_inline(self):
        ex = SweepExecutor(backend="fast", shards=2)
        outs = ex.run_many(_jobs())
        clean = _clean_outcomes()
        assert [o.to_payload() for o in outs] == [
            o.to_payload() for o in clean
        ]

    def test_populates_explicit_store(self, tmp_path):
        ex = SweepExecutor(
            backend="fast", shards=2, store_path=tmp_path / "store"
        )
        outs = ex.run_many(_jobs())
        store = ResultStore(tmp_path / "store")
        jobs = _jobs()
        keys = {job.cache_key() for job in jobs}
        assert set(store.keys()) == keys
        assert len(outs) == len(jobs)
        # The store holds the raw executed payloads (backend untagged).
        by_key = {
            j.cache_key(): run(j, backend="fast").to_payload() for j in jobs
        }
        for key in keys:
            assert store.get(key) == by_key[key]

    def test_second_sweep_served_from_store(self, tmp_path):
        SweepExecutor(
            backend="fast", shards=2, store_path=tmp_path / "store"
        ).run_many(_jobs())
        ex = SweepExecutor(
            backend="fast", shards=2, store_path=tmp_path / "store"
        )
        with capture_metrics() as reg:
            outs = ex.run_many(_jobs())
        assert ex.stats.executed == 0
        assert reg.counter(obs_names.STORE_HITS).value == len(
            {j.cache_key() for j in _jobs()}
        )
        assert [o.to_payload() for o in outs] == [
            o.to_payload() for o in _clean_outcomes()
        ]

    def test_pool_scheduler_also_publishes_to_store(self, tmp_path):
        ex = SweepExecutor(
            backend="fast", workers=2, store_path=tmp_path / "store"
        )
        ex.run_many(_jobs())
        store = ResultStore(tmp_path / "store")
        assert set(store.keys()) == {j.cache_key() for j in _jobs()}

    def test_shard_jobs_histogram_observed(self):
        ex = SweepExecutor(backend="fast", shards=3)
        with capture_metrics() as reg:
            ex.run_many(_jobs())
        hist = reg.get(obs_names.SCHED_SHARD_JOBS)
        assert hist is not None
        assert hist.count == 3  # one observation per shard, empty or not
        assert hist.sum == ex.stats.executed


class TestShardRecovery:
    def test_worker_crash_recovers_bit_identical(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv(CHAOS_ONCE_DIR_ENV, str(tmp_path / "once"))
        (tmp_path / "once").mkdir()
        ex = SweepExecutor(
            backend="fast",
            shards=2,
            store_path=tmp_path / "store",
            retry=FAST,
        )
        outs = ex.run_many(_jobs())
        clean = _clean_outcomes()
        assert [o.to_payload() for o in outs] == [
            o.to_payload() for o in clean
        ]
        assert ex.stats.failures == 0
        assert ex.stats.retries > 0

    def test_dead_shards_published_work_stays_recovered(
        self, monkeypatch, tmp_path
    ):
        # Pre-publish half the results as if a shard died after saving
        # them: the coordinator must bank them as hits, not re-run them.
        jobs = _jobs()
        clean = _clean_outcomes()
        store = ResultStore(tmp_path / "store")
        store.put_many(
            {
                j.cache_key(): run(j, backend="fast").to_payload()
                for j in jobs[:6]
            }
        )
        ex = SweepExecutor(
            backend="fast",
            shards=2,
            store_path=tmp_path / "store",
            retry=FAST,
        )
        outs = ex.run_many(jobs)
        assert [o.to_payload() for o in outs] == [
            o.to_payload() for o in clean
        ]
        assert ex.stats.executed < len({j.cache_key() for j in jobs})
        assert ex.stats.hits >= 6
