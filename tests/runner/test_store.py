"""The content-addressed shared result store (repro.runner.store)."""

from __future__ import annotations

import hashlib
import json
import warnings

import pytest

from repro.memory.config import MemoryConfig
from repro.obs import capture_metrics
from repro.obs import names as obs_names
from repro.runner import ResultStore, SweepExecutor, jobs_for_offsets

CFG = MemoryConfig(banks=12, bank_cycle=3)


def _payloads(n: int = 6) -> dict[str, dict]:
    """Real job keys and payloads (exact Fractions survive the store)."""
    ex = SweepExecutor(backend="fast")
    out = {}
    for job, outcome in zip(
        jobs_for_offsets(CFG, 1, 7, range(n)),
        ex.run_many(jobs_for_offsets(CFG, 1, 7, range(n))),
    ):
        out[job.cache_key()] = outcome.to_payload()
    return out


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        payloads = _payloads()
        for key, payload in payloads.items():
            store.put(key, payload)
        for key, payload in payloads.items():
            assert store.get(key) == payload

    def test_get_miss_is_none(self, tmp_path):
        assert ResultStore(tmp_path).get("no-such-key") is None

    def test_put_many_get_many(self, tmp_path):
        store = ResultStore(tmp_path)
        payloads = _payloads()
        store.put_many(payloads)
        keys = list(payloads) + ["absent", list(payloads)[0]]
        assert store.get_many(keys) == payloads

    def test_contains_len_keys(self, tmp_path):
        store = ResultStore(tmp_path)
        payloads = _payloads()
        store.put_many(payloads)
        assert len(store) == len(payloads)
        assert set(store.keys()) == set(payloads)
        assert list(payloads)[0] in store
        assert "absent" not in store

    def test_last_writer_wins(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k", {"v": 1})
        store.put("k", {"v": 2})
        assert store.get("k") == {"v": 2}


class TestLayout:
    def test_content_addressing(self, tmp_path):
        store = ResultStore(tmp_path)
        digest = hashlib.sha256(b"some-key").hexdigest()
        path = store.path_for("some-key")
        assert path.parent.name == digest[:2]
        assert path.name == f"{digest}.json"
        assert path.parent.parent == store.root

    def test_no_temp_files_left_behind(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put_many(_payloads())
        assert not list(store.root.rglob("*.tmp*"))

    def test_file_carries_key_header(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k", {"v": 1})
        data = json.loads(store.path_for("k").read_text())
        assert data["key"] == "k"
        assert data["version"] == 1


class TestQuarantine:
    def test_corrupt_file_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.path_for("k")
        path.parent.mkdir(parents=True)
        path.write_text("{ not json")
        with pytest.warns(RuntimeWarning, match="unreadable"):
            assert store.get("k") is None
        assert not path.exists()
        assert path.with_suffix(path.suffix + ".corrupt").exists()

    def test_version_mismatch_quarantines(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k", {"v": 1})
        path = store.path_for("k")
        path.write_text(json.dumps({"version": 99, "key": "k", "payload": {}}))
        with pytest.warns(RuntimeWarning, match="version-mismatched"):
            assert store.get("k") is None

    def test_clean_store_never_warns(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put_many(_payloads())
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert store.get_many(store.keys())


class TestMetrics:
    def test_hit_miss_write_counters(self, tmp_path):
        payloads = _payloads()
        with capture_metrics() as reg:
            store = ResultStore(tmp_path)
            store.put_many(payloads)
            store.put("extra", {"v": 1})
            found = store.get_many(list(payloads) + ["absent"])
            assert store.get("absent-two") is None
        assert len(found) == len(payloads)
        assert reg.counter(obs_names.STORE_WRITES).value == len(payloads) + 1
        assert reg.counter(obs_names.STORE_HITS).value == len(payloads)
        assert reg.counter(obs_names.STORE_MISSES).value == 2

    def test_quarantine_counter(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.path_for("k")
        path.parent.mkdir(parents=True)
        path.write_text("garbage")
        with capture_metrics() as reg, pytest.warns(RuntimeWarning):
            store.get("k")
        assert reg.counter(obs_names.STORE_QUARANTINED).value == 1
