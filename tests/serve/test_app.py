"""The HTTP service: routing, shedding, exactness, the socket layer."""

import asyncio
import json

from repro.obs import names as _names
from repro.obs.metrics import MetricsRegistry, capture_metrics
from repro.runner.executor import SweepExecutor
from repro.runner.store import ResultStore
from repro.serve.app import BandwidthService

#: Analytically undecided pair: forces the simulation drain path.
UNDECIDED = {"banks": 8, "bank_cycle": 4, "streams": [[0, 4], [0, 4]]}
#: Theorem 1 point with a non-trivial exact value: m=8, n_c=4, d=4
#: -> r = 2 < n_c, b_eff = r/n_c = 1/2.
ANALYTIC = {"banks": 8, "bank_cycle": 4, "streams": [[0, 4]]}


def _dispatch(service, method, target, body=b""):
    return asyncio.run(service.dispatch(method, target, body))


def _post(service, target, obj):
    return _dispatch(service, "POST", target, json.dumps(obj).encode())


def _service(**kwargs):
    kwargs.setdefault("executor", SweepExecutor(backend="auto"))
    return BandwidthService(**kwargs)


class TestRouting:
    def test_unknown_path_is_404(self):
        status, _, body, _ = _dispatch(_service(), "GET", "/nope")
        assert status == 404
        assert json.loads(body)["error"]["mode"] == "not-found"

    def test_wrong_method_is_405(self):
        status, _, body, _ = _dispatch(_service(), "POST", "/healthz")
        assert status == 405
        assert json.loads(body)["error"]["mode"] == "bad-method"

    def test_malformed_body_is_400_not_500(self):
        service = _service()
        for raw in (b"{nope", b"[]", b"null", b'{"jobs": 3}'):
            status, _, body, _ = _dispatch(
                service, "POST", "/v1/beff", raw
            )
            assert status == 400, raw
            assert json.loads(body)["error"]["mode"] == "malformed"

    def test_healthz_reports_state(self):
        status, _, body, _ = _dispatch(_service(), "GET", "/healthz")
        assert status == 200
        data = json.loads(body)
        assert data["status"] == "ok"
        assert data["inflight"] == 0


class TestBeff:
    def test_analytic_point_returns_exact_fraction(self):
        status, _, body, _ = _post(_service(), "/v1/beff", ANALYTIC)
        assert status == 200
        data = json.loads(body)
        assert data["bandwidth"] == "1/2"
        assert data["tier"] == "analytic"
        assert data["bandwidth_float"] == 0.5

    def test_undecided_point_simulates_exactly(self):
        service = _service()
        status, _, body, _ = _post(service, "/v1/beff", UNDECIDED)
        assert status == 200
        data = json.loads(body)
        assert data["tier"] == "simulated"
        # two interleaved streams on one n_c=4 bank: 2 grants / 4 clocks
        assert data["bandwidth"] == "1/2"
        assert service.executor.stats.executed == 1

    def test_second_identical_request_is_a_lookup(self):
        service = _service()
        _post(service, "/v1/beff", UNDECIDED)
        status, _, body, _ = _post(service, "/v1/beff", UNDECIDED)
        assert status == 200
        assert json.loads(body)["tier"] in ("store", "memo")
        assert service.executor.stats.executed == 1

    def test_store_tier_serves_precomputed_points(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        warm = SweepExecutor(backend="fast", store=store)
        from repro.serve.protocol import job_from_payload

        job = job_from_payload(UNDECIDED)
        warm.run_one(job)
        service = BandwidthService(
            executor=SweepExecutor(backend="auto"), store=store
        )
        status, _, body, _ = _post(service, "/v1/beff", UNDECIDED)
        assert status == 200
        assert json.loads(body)["tier"] == "store"
        assert service.executor.stats.executed == 0


class TestSweep:
    def test_sweep_returns_results_in_order_with_tier_counts(self):
        service = _service()
        jobs = [ANALYTIC, UNDECIDED, ANALYTIC]
        status, _, body, _ = _post(service, "/v1/sweep", {"jobs": jobs})
        assert status == 200
        data = json.loads(body)
        assert data["count"] == 3
        assert data["failures"] == 0
        tiers = [r["tier"] for r in data["results"]]
        assert tiers[0] == "analytic" and tiers[2] == "analytic"
        assert tiers[1] == "simulated"
        assert data["tiers"]["analytic"] == 2

    def test_sweep_deduplicates_identical_jobs(self):
        service = _service()
        status, _, body, _ = _post(
            service, "/v1/sweep", {"jobs": [UNDECIDED] * 16}
        )
        assert status == 200
        assert service.executor.stats.executed == 1
        values = {r["bandwidth"] for r in json.loads(body)["results"]}
        assert values == {"1/2"}

    def test_oversized_sweep_is_413(self):
        service = _service(max_sweep_jobs=2)
        status, _, body, _ = _post(
            service, "/v1/sweep", {"jobs": [ANALYTIC] * 3}
        )
        assert status == 413
        assert json.loads(body)["error"]["mode"] == "too-large"


class TestRegime:
    def test_classifies_a_pair_in_closed_form(self):
        status, _, body, _ = _dispatch(
            _service(), "GET", "/v1/regime?m=16&n_c=4&d1=1&d2=2"
        )
        assert status == 200
        data = json.loads(body)
        assert data["regime"] == "unique-barrier"
        assert data["predicted_bandwidth"] == "3/2"
        assert data["delayed_stream"] == 2

    def test_missing_parameter_is_400(self):
        status, _, body, _ = _dispatch(
            _service(), "GET", "/v1/regime?m=16&n_c=4&d1=1"
        )
        assert status == 400


class TestLoadShedding:
    def test_zero_cap_sheds_with_retry_after(self):
        service = _service(max_inflight=0)
        with capture_metrics() as reg:
            status, _, body, extra = _post(service, "/v1/beff", ANALYTIC)
        assert status == 429
        assert json.loads(body)["error"]["mode"] == "overloaded"
        assert extra.get("Retry-After") == "1"
        shed = reg.get(_names.SERVE_SHED)
        assert shed is not None and shed.value == 1

    def test_draining_service_returns_503(self):
        service = _service()
        asyncio.run(service.aclose())
        status, _, body, _ = _post(service, "/v1/beff", ANALYTIC)
        assert status == 503
        assert json.loads(body)["error"]["mode"] == "shutting-down"


class TestMetricsContract:
    def test_dispatch_emits_only_contract_names(self):
        service = _service()
        with capture_metrics() as reg:
            _post(service, "/v1/beff", ANALYTIC)
            _post(service, "/v1/beff", UNDECIDED)
            _dispatch(service, "GET", "/healthz")
            _dispatch(service, "GET", "/nope")
        names = {metric.name for metric in reg.collect()}
        assert names <= _names.metric_names()
        assert _names.SERVE_REQUESTS in names
        assert _names.SERVE_LATENCY in names
        assert _names.SERVE_LOOKUP in names

    def test_latency_histogram_populates_per_endpoint(self):
        service = _service()
        with capture_metrics() as reg:
            _post(service, "/v1/beff", ANALYTIC)
        hist = reg.get(_names.SERVE_LATENCY, endpoint="/v1/beff")
        assert hist is not None and hist.count == 1


class TestHttpServer:
    """End-to-end over a real socket."""

    @staticmethod
    async def _request(host, port, raw):
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(raw)
        await writer.drain()
        writer.write_eof()
        data = await reader.read()
        writer.close()
        await writer.wait_closed()
        return data

    @staticmethod
    def _http(method, path, obj=None):
        body = b"" if obj is None else json.dumps(obj).encode()
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: t\r\nContent-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        )
        return head.encode() + body

    def test_round_trip_and_graceful_shutdown(self):
        async def main():
            service = _service()
            await service.start("127.0.0.1", 0)
            port = service.port
            raw = await self._request(
                "127.0.0.1", port, self._http("POST", "/v1/beff", ANALYTIC)
            )
            head, _, payload = raw.partition(b"\r\n\r\n")
            assert head.startswith(b"HTTP/1.1 200 OK")
            data = json.loads(payload)
            assert data["bandwidth"] == "1/2"

            metrics_raw = await self._request(
                "127.0.0.1", port, self._http("GET", "/metrics")
            )
            assert b"HTTP/1.1 200" in metrics_raw.split(b"\r\n", 1)[0]
            assert b"serve_http_requests" in metrics_raw

            await service.aclose()
            # the registry is released on shutdown
            from repro.obs.metrics import active_metrics

            assert active_metrics() is None

        asyncio.run(main())

    def test_keep_alive_serves_sequential_requests(self):
        async def main():
            service = _service()
            await service.start("127.0.0.1", 0)
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", service.port
            )
            body = json.dumps(ANALYTIC).encode()
            head = (
                "POST /v1/beff HTTP/1.1\r\nHost: t\r\n"
                f"Content-Length: {len(body)}\r\n\r\n"
            ).encode()
            for _ in range(2):
                writer.write(head + body)
                await writer.drain()
                status_line = await reader.readline()
                assert status_line.startswith(b"HTTP/1.1 200")
                length = None
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b""):
                        break
                    if line.lower().startswith(b"content-length:"):
                        length = int(line.split(b":")[1])
                assert length is not None
                payload = await reader.readexactly(length)
                assert json.loads(payload)["bandwidth"] == "1/2"
            writer.close()
            await service.aclose()

        asyncio.run(main())

    def test_bad_request_line_closes_with_400(self):
        async def main():
            service = _service()
            await service.start("127.0.0.1", 0)
            raw = await self._request(
                "127.0.0.1", service.port, b"garbage\r\n\r\n"
            )
            assert raw.startswith(b"HTTP/1.1 400")
            await service.aclose()

        asyncio.run(main())

    def test_metrics_registry_isolated_per_service(self):
        async def main():
            service = _service()
            await service.start("127.0.0.1", 0)
            assert isinstance(service.registry, MetricsRegistry)
            await self._request(
                "127.0.0.1",
                service.port,
                self._http("POST", "/v1/beff", ANALYTIC),
            )
            text = (
                await self._request(
                    "127.0.0.1", service.port, self._http("GET", "/metrics")
                )
            ).decode()
            assert 'serve_http_requests{endpoint="/v1/beff"' in text
            assert "serve_http_latency_us" in text
            await service.aclose()

        asyncio.run(main())
