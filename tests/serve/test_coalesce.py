"""Coalescing semantics: fold, micro-batch, serialise, fail cleanly."""

import asyncio

import pytest

from repro.memory.config import MemoryConfig
from repro.runner.executor import SweepExecutor
from repro.runner.job import SimJob
from repro.serve.coalesce import Coalescer


def _job(streams, *, banks=8, bank_cycle=4):
    return SimJob.from_specs(
        MemoryConfig(banks=banks, bank_cycle=bank_cycle), streams
    )


#: Analytically undecided -> the executor really simulates it.
UNDECIDED = [(0, 4), (0, 4)]


class TestCoalescing:
    def test_identical_concurrent_requests_execute_once(self):
        executor = SweepExecutor(backend="fast")
        coalescer = Coalescer(executor)

        async def main():
            job = _job(UNDECIDED)
            return await asyncio.gather(
                *(coalescer.submit(job) for _ in range(64))
            )

        outcomes = asyncio.run(main())
        assert len(outcomes) == 64
        assert executor.stats.executed == 1
        assert len({o.bandwidth for o in outcomes}) == 1

    def test_isomorphic_requests_fold_too(self):
        executor = SweepExecutor(backend="fast")
        coalescer = Coalescer(executor)

        async def main():
            # same canonical class, different bank numbering
            a = _job([(0, 4), (0, 4)])
            b = _job([(3, 4), (3, 4)])
            assert a.cache_key() == b.cache_key()
            return await asyncio.gather(
                coalescer.submit(a), coalescer.submit(b)
            )

        outcomes = asyncio.run(main())
        assert executor.stats.executed == 1
        assert outcomes[0].bandwidth == outcomes[1].bandwidth

    def test_distinct_jobs_micro_batch_through_one_drain(self):
        executor = SweepExecutor(backend="fast")
        coalescer = Coalescer(executor)
        jobs = [_job([(b, 4), (b, 4)]) for b in range(4)]
        # translations of one class plus genuinely distinct strides
        jobs += [_job([(0, d), (0, d)]) for d in (2, 4, 6)]

        async def main():
            return await asyncio.gather(
                *(coalescer.submit(j) for j in jobs)
            )

        outcomes = asyncio.run(main())
        assert len(outcomes) == len(jobs)
        distinct = len({j.cache_key() for j in jobs})
        assert executor.stats.executed == distinct

    def test_late_duplicate_is_a_memo_hit_not_a_rerun(self):
        executor = SweepExecutor(backend="fast")
        coalescer = Coalescer(executor)
        job = _job(UNDECIDED)

        async def main():
            first = await coalescer.submit(job)
            second = await coalescer.submit(job)
            return first, second

        first, second = asyncio.run(main())
        assert executor.stats.executed == 1
        assert executor.stats.hits >= 1
        assert first.bandwidth == second.bandwidth


class TestFailurePaths:
    def test_backend_error_propagates_to_every_waiter(self):
        executor = SweepExecutor(backend="analytic")  # strict: raises
        coalescer = Coalescer(executor)
        job = _job(UNDECIDED)  # analytically undecided -> ValueError

        async def main():
            return await asyncio.gather(
                *(coalescer.submit(job) for _ in range(3)),
                return_exceptions=True,
            )

        results = asyncio.run(main())
        assert len(results) == 3
        assert all(isinstance(r, ValueError) for r in results)

    def test_closed_coalescer_refuses_new_work(self):
        executor = SweepExecutor(backend="fast")
        coalescer = Coalescer(executor)

        async def main():
            await coalescer.close()
            with pytest.raises(RuntimeError):
                await coalescer.submit(_job(UNDECIDED))

        asyncio.run(main())
