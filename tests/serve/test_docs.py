"""docs/SERVICE.md must stay in sync with the wire contract.

The document's tables are parsed back out of the markdown and diffed
against the declarations in :mod:`repro.serve.protocol` and the
``serve.*`` rows of the :mod:`repro.obs.names` contract — adding an
endpoint, failure mode or metric without documenting it (or
documenting one that does not exist) fails here.
"""

from __future__ import annotations

import pathlib
import re

from repro.obs.names import METRIC_CONTRACT, SPAN_CONTRACT
from repro.serve.app import MAX_BODY_BYTES
from repro.serve.protocol import ENDPOINTS, FAILURE_STATUS, MAX_SWEEP_JOBS

DOC = pathlib.Path(__file__).resolve().parents[2] / "docs" / "SERVICE.md"


def _table_rows(heading: str) -> list[list[str]]:
    """Cells of the first markdown table under ``## <heading>``."""
    text = DOC.read_text()
    match = re.search(rf"^## {re.escape(heading)}$", text, re.MULTILINE)
    assert match, f"section {heading!r} missing from SERVICE.md"
    rows: list[list[str]] = []
    in_table = False
    for line in text[match.end():].splitlines():
        if line.startswith("|"):
            in_table = True
            cells = [c.strip() for c in line.strip("|").split("|")]
            if all(set(c) <= {"-"} for c in cells):
                continue  # the |---|---| separator
            rows.append(cells)
        elif in_table:
            break
    assert rows, f"no table under section {heading!r}"
    return rows[1:]  # drop the header row


def _strip_code(cell: str) -> str:
    return cell.strip("`")


class TestEndpointCatalog:
    def test_documented_rows_match_declaration(self):
        rows = _table_rows("Endpoint catalog")
        documented = [
            (row[0], _strip_code(row[1]), row[2]) for row in rows
        ]
        declared = [
            (spec.method, spec.path, spec.summary) for spec in ENDPOINTS
        ]
        assert documented == declared


class TestFailureModes:
    def test_documented_table_matches_declaration(self):
        rows = _table_rows("Failure modes")
        documented = {
            _strip_code(row[0]): int(row[1]) for row in rows
        }
        assert documented == FAILURE_STATUS

    def test_documented_order_matches_status_order(self):
        rows = _table_rows("Failure modes")
        statuses = [int(row[1]) for row in rows]
        assert statuses == sorted(statuses)


class TestMetricTable:
    def test_serve_metrics_match_contract(self):
        rows = _table_rows("Metrics")
        documented = {
            _strip_code(row[0]): (row[1], row[2]) for row in rows
        }
        declared = {
            spec.name: (
                spec.kind,
                ", ".join(f"`{label}`" for label in spec.labels) or "—",
            )
            for spec in METRIC_CONTRACT
            if spec.name.startswith("serve.")
        }
        assert documented == declared

    def test_serve_spans_mentioned(self):
        text = DOC.read_text()
        for spec in SPAN_CONTRACT:
            if spec.name.startswith("serve."):
                assert f"`{spec.name}`" in text, spec.name
                for label in spec.labels:
                    assert f"`{label}`" in text, (spec.name, label)


class TestLimits:
    def test_sweep_cap_documented(self):
        text = DOC.read_text()
        assert f"{MAX_SWEEP_JOBS} jobs" in text

    def test_body_cap_documented(self):
        assert MAX_BODY_BYTES == 8 * 1024 * 1024
        assert "8 MiB" in DOC.read_text()


class TestCrossReferences:
    def test_doc_names_its_enforcers(self):
        text = DOC.read_text()
        # the doc must point readers at the things that enforce it
        for ref in (
            "tests/serve/test_docs.py",
            "benchmarks/bench_serve.py",
            "tools/serve_smoke.py",
            "OBSERVABILITY.md",
        ):
            assert ref in text, ref
