"""The lookup tier: probe order, store preload, precompute."""

from repro.memory.config import MemoryConfig
from repro.runner.analytic import solve
from repro.runner.executor import SweepExecutor
from repro.runner.job import SimJob
from repro.runner.store import ResultStore
from repro.serve.lookup import LookupTier


def _job(streams, *, banks=8, bank_cycle=4, **kw):
    return SimJob.from_specs(
        MemoryConfig(banks=banks, bank_cycle=bank_cycle), streams, **kw
    )


#: Undecided by the closed forms (same start, equal strides): must
#: always fall through to simulation.
UNDECIDED = [(0, 4), (0, 4)]


class TestProbe:
    def test_analytic_tier_answers_decided_jobs(self):
        tier = LookupTier()
        job = _job([(0, 1)])
        hit = tier.probe(job)
        assert hit is not None
        out, source = hit
        assert source == "analytic"
        assert out.bandwidth == 1

    def test_miss_returns_none_without_simulating(self):
        tier = LookupTier()
        job = _job(UNDECIDED)
        assert solve(job) is None  # precondition: truly undecided
        assert tier.probe(job) is None

    def test_store_tier_preloads_and_canonicalizes(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        job = _job(UNDECIDED)
        out = SweepExecutor(backend="fast").run_one(job)
        store.put(job.cache_key(), out.to_payload())

        tier = LookupTier(store=store)
        assert len(tier) == 1
        # an isomorphic twin (banks translated j -> j + 1) hits the key
        twin = _job([(1, 4), (1, 4)])
        assert twin.cache_key() == job.cache_key()
        hit = tier.probe(twin)
        assert hit is not None
        got, source = hit
        assert source == "store"
        assert got.bandwidth == out.bandwidth
        assert got.period == out.period

    def test_memo_tier_sees_executor_results(self):
        executor = SweepExecutor(backend="fast")
        tier = LookupTier(executor=executor)
        job = _job(UNDECIDED)
        assert tier.probe(job) is None
        executor.run_one(job)
        hit = tier.probe(job)
        assert hit is not None
        assert hit[1] == "memo"


class TestPrecompute:
    def test_precompute_fills_table_and_store(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        executor = SweepExecutor(backend="fast", store=store)
        tier = LookupTier(store=store, executor=executor)
        jobs = [_job(UNDECIDED), _job([(1, 4), (1, 4)])]
        added = tier.precompute(jobs, executor=executor)
        # the two jobs are isomorphic -> one canonical entry
        assert added == len(jobs)
        assert len(tier) == 1
        assert executor.stats.executed == 1

        # a fresh tier over the same store preloads the entry
        rebuilt = LookupTier(store=store)
        assert len(rebuilt) == 1
        assert rebuilt.probe(jobs[0]) is not None

    def test_absorb_adds_simulated_results(self):
        executor = SweepExecutor(backend="fast")
        tier = LookupTier()
        job = _job(UNDECIDED)
        out = executor.run_one(job)
        tier.absorb(job, out)
        hit = tier.probe(job)
        assert hit is not None
        assert hit[1] == "store"
