"""The wire contract: job validation, payloads, the status table."""

import pytest

from repro.memory.config import MemoryConfig
from repro.runner.api import run
from repro.runner.job import SimJob
from repro.serve.protocol import (
    ENDPOINTS,
    FAILURE_STATUS,
    MAX_SWEEP_JOBS,
    ProtocolError,
    job_from_payload,
    outcome_to_payload,
)


class TestJobFromPayload:
    def test_minimal_payload_builds_a_job(self):
        job = job_from_payload(
            {"banks": 8, "bank_cycle": 4, "streams": [[0, 1]]}
        )
        assert job == SimJob.from_specs(
            MemoryConfig(banks=8, bank_cycle=4), [(0, 1)]
        )

    def test_full_payload_round_trips_every_field(self):
        job = job_from_payload(
            {
                "banks": 16,
                "bank_cycle": 4,
                "streams": [[0, 1], [3, 5]],
                "cpus": [0, 0],
                "sections": 4,
                "section_mapping": "cyclic",
                "priority": "cyclic",
                "intra_priority": "fixed",
                "steady": True,
                "max_cycles": 5000,
            }
        )
        assert job.banks == 16
        assert job.streams == ((0, 1), (3, 5))
        assert job.cpus == (0, 0)
        assert job.sections == 4
        assert job.priority == "cyclic"
        assert job.intra_priority == "fixed"
        assert job.max_cycles == 5000

    def test_starts_and_strides_reduce_modulo_banks(self):
        job = job_from_payload(
            {"banks": 8, "bank_cycle": 4, "streams": [[9, -1]]}
        )
        assert job.streams == ((1, 7),)

    def test_fixed_horizon_jobs(self):
        job = job_from_payload(
            {
                "banks": 8,
                "bank_cycle": 4,
                "streams": [[0, 1]],
                "steady": False,
                "cycles": 100,
            }
        )
        assert not job.steady
        assert job.cycles == 100

    @pytest.mark.parametrize(
        "payload",
        [
            "not an object",
            {"bank_cycle": 4, "streams": [[0, 1]]},  # no banks
            {"banks": 8, "streams": [[0, 1]]},  # no bank_cycle
            {"banks": 8, "bank_cycle": 4},  # no streams
            {"banks": 8, "bank_cycle": 4, "streams": []},
            {"banks": 8, "bank_cycle": 4, "streams": [[0]]},
            {"banks": 8, "bank_cycle": 4, "streams": [[0, 1.5]]},
            {"banks": True, "bank_cycle": 4, "streams": [[0, 1]]},
            {"banks": 8, "bank_cycle": 4, "streams": [[0, 1]], "cpus": "x"},
            {"banks": 8, "bank_cycle": 4, "streams": [[0, 1]], "trace": True},
            {"banks": 8, "bank_cycle": 4, "streams": [[0, 1]], "bogus": 1},
            {"banks": 0, "bank_cycle": 4, "streams": [[0, 1]]},
            {
                "banks": 8,
                "bank_cycle": 4,
                "streams": [[0, 1]],
                "steady": False,
            },  # fixed horizon without cycles
        ],
    )
    def test_bad_payloads_raise_malformed(self, payload):
        with pytest.raises(ProtocolError) as err:
            job_from_payload(payload)
        assert err.value.mode == "malformed"
        assert err.value.status == 400


class TestOutcomePayload:
    def test_carries_exact_fraction_and_provenance(self):
        job = job_from_payload(
            {"banks": 8, "bank_cycle": 4, "streams": [[0, 1]]}
        )
        out = run(job, backend="fast")
        body = outcome_to_payload(job, out, tier="simulated")
        assert body["bandwidth"] == "1/1"
        assert body["bandwidth_float"] == 1.0
        assert body["tier"] == "simulated"
        assert body["key"] == job.cache_key()
        assert body["grants"] == [8]


class TestContractTables:
    def test_status_table_is_total_and_sane(self):
        assert set(FAILURE_STATUS.values()) == {
            400, 404, 405, 413, 429, 500, 502, 503
        }
        # one mode per status: the mapping must stay invertible
        assert len(set(FAILURE_STATUS.values())) == len(FAILURE_STATUS)

    def test_unknown_failure_mode_is_rejected(self):
        with pytest.raises(ValueError):
            ProtocolError("no-such-mode", "x")

    def test_endpoint_catalog_shape(self):
        paths = [e.path for e in ENDPOINTS]
        assert len(paths) == len(set(paths))
        assert "/v1/beff" in paths and "/metrics" in paths
        assert all(e.method in ("GET", "POST") for e in ENDPOINTS)
        assert MAX_SWEEP_JOBS > 0
