"""The wire contract: job validation, payloads, the status table."""

import pytest

from repro.memory.config import MemoryConfig
from repro.runner.api import run
from repro.runner.job import SimJob
from repro.serve.protocol import (
    ENDPOINTS,
    FAILURE_STATUS,
    MAX_SWEEP_JOBS,
    ProtocolError,
    job_from_payload,
    outcome_to_payload,
)


class TestJobFromPayload:
    def test_minimal_payload_builds_a_job(self):
        job = job_from_payload(
            {"banks": 8, "bank_cycle": 4, "streams": [[0, 1]]}
        )
        assert job == SimJob.from_specs(
            MemoryConfig(banks=8, bank_cycle=4), [(0, 1)]
        )

    def test_full_payload_round_trips_every_field(self):
        job = job_from_payload(
            {
                "banks": 16,
                "bank_cycle": 4,
                "streams": [[0, 1], [3, 5]],
                "cpus": [0, 0],
                "sections": 4,
                "section_mapping": "cyclic",
                "priority": "cyclic",
                "intra_priority": "fixed",
                "steady": True,
                "max_cycles": 5000,
            }
        )
        assert job.banks == 16
        assert job.streams == ((0, 1), (3, 5))
        assert job.cpus == (0, 0)
        assert job.sections == 4
        assert job.priority == "cyclic"
        assert job.intra_priority == "fixed"
        assert job.max_cycles == 5000

    def test_starts_and_strides_reduce_modulo_banks(self):
        job = job_from_payload(
            {"banks": 8, "bank_cycle": 4, "streams": [[9, -1]]}
        )
        assert job.streams == ((1, 7),)

    def test_fixed_horizon_jobs(self):
        job = job_from_payload(
            {
                "banks": 8,
                "bank_cycle": 4,
                "streams": [[0, 1]],
                "steady": False,
                "cycles": 100,
            }
        )
        assert not job.steady
        assert job.cycles == 100

    @pytest.mark.parametrize(
        "payload",
        [
            "not an object",
            {"bank_cycle": 4, "streams": [[0, 1]]},  # no banks
            {"banks": 8, "streams": [[0, 1]]},  # no bank_cycle
            {"banks": 8, "bank_cycle": 4},  # no streams
            {"banks": 8, "bank_cycle": 4, "streams": []},
            {"banks": 8, "bank_cycle": 4, "streams": [[0]]},
            {"banks": 8, "bank_cycle": 4, "streams": [[0, 1.5]]},
            {"banks": True, "bank_cycle": 4, "streams": [[0, 1]]},
            {"banks": 8, "bank_cycle": 4, "streams": [[0, 1]], "cpus": "x"},
            {"banks": 8, "bank_cycle": 4, "streams": [[0, 1]], "trace": True},
            {"banks": 8, "bank_cycle": 4, "streams": [[0, 1]], "bogus": 1},
            {"banks": 0, "bank_cycle": 4, "streams": [[0, 1]]},
            {
                "banks": 8,
                "bank_cycle": 4,
                "streams": [[0, 1]],
                "steady": False,
            },  # fixed horizon without cycles
        ],
    )
    def test_bad_payloads_raise_malformed(self, payload):
        with pytest.raises(ProtocolError) as err:
            job_from_payload(payload)
        assert err.value.mode == "malformed"
        assert err.value.status == 400


class TestOutcomePayload:
    def test_carries_exact_fraction_and_provenance(self):
        job = job_from_payload(
            {"banks": 8, "bank_cycle": 4, "streams": [[0, 1]]}
        )
        out = run(job, backend="fast")
        body = outcome_to_payload(job, out, tier="simulated")
        assert body["bandwidth"] == "1/1"
        assert body["bandwidth_float"] == 1.0
        assert body["tier"] == "simulated"
        assert body["key"] == job.cache_key()
        assert body["grants"] == [8]


class TestContractTables:
    def test_status_table_is_total_and_sane(self):
        assert set(FAILURE_STATUS.values()) == {
            400, 404, 405, 413, 429, 500, 502, 503
        }
        # one mode per status: the mapping must stay invertible
        assert len(set(FAILURE_STATUS.values())) == len(FAILURE_STATUS)

    def test_unknown_failure_mode_is_rejected(self):
        with pytest.raises(ValueError):
            ProtocolError("no-such-mode", "x")

    def test_endpoint_catalog_shape(self):
        paths = [e.path for e in ENDPOINTS]
        assert len(paths) == len(set(paths))
        assert "/v1/beff" in paths and "/metrics" in paths
        assert all(e.method in ("GET", "POST") for e in ENDPOINTS)
        assert MAX_SWEEP_JOBS > 0


class TestPolicyFieldsOnTheWire:
    BASE = {"banks": 8, "bank_cycle": 4, "streams": [[0, 1], [0, 1]],
            "cpus": [0, 1]}

    def test_arbiter_and_regulate_round_trip(self):
        job = job_from_payload(
            {**self.BASE, "arbiter": "wfq:3,1",
             "regulate": ["stream:0=1/4"]}
        )
        assert job.arbiter == "wfq:3,1"
        assert job.regulate == ("stream:0=1/4",)

    def test_defaults_are_unregulated(self):
        job = job_from_payload(self.BASE)
        assert job.arbiter is None
        assert job.regulate == ()

    @pytest.mark.parametrize("patch", [
        {"arbiter": 7},
        {"arbiter": "rr"},
        {"arbiter": "wfq:1"},
        {"regulate": "stream=1/4"},
        {"regulate": [7]},
        {"regulate": ["bogus"]},
        {"regulate": ["stream:5=1/4"]},
    ])
    def test_malformed_policy_fields_are_400(self, patch):
        with pytest.raises(ProtocolError) as err:
            job_from_payload({**self.BASE, **patch})
        assert err.value.mode == "malformed"

    def test_regulated_job_is_servable(self):
        job = job_from_payload(
            {**self.BASE, "regulate": ["stream:0=1/4"]}
        )
        out = run(job, backend="fast")
        body = outcome_to_payload(job, out, tier="simulated")
        assert body["bandwidth"] == "1/2"
        assert "reg:stream:0=1/4" in body["key"]
