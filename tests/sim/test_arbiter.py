"""Unit tests for repro.sim.arbiter: specs, buckets, policies."""

from __future__ import annotations

import pytest

from repro.sim.arbiter import (
    PriorityArbiter,
    RegulationSpec,
    RegulatedArbiter,
    TokenBucket,
    WeightedFairArbiter,
    canonical_arbiter,
    canonical_regulation,
    make_arbiter,
    parse_regulation,
    regulation_is_vacuous,
    regulation_renumbering_safe,
    validate_regulation,
)
from repro.sim.priority import (
    BlockCyclicPriority,
    CyclicPriority,
    FixedPriority,
    LRUPriority,
)


class TestRegulationGrammar:
    def test_parse_shapes(self):
        (uniform,) = parse_regulation(["stream=1/4"])
        assert uniform == RegulationSpec("stream", None, 1, 4)
        assert uniform.render() == "stream=1/4"
        assert not uniform.vacuous
        (indexed,) = parse_regulation(["bank:3=2/8"])
        assert (indexed.scope, indexed.index) == ("bank", 3)
        assert indexed.render() == "bank:3=2/8"

    @pytest.mark.parametrize("spec", [
        "stream", "stream=1", "stream=1/0", "stream=0/4", "stream=-1/4",
        "stream=a/b", "stream:x=1/4", "stream:-1=1/4", "cpu=1/4", "",
    ])
    def test_malformed_specs(self, spec):
        with pytest.raises(ValueError, match="invalid regulation spec"):
            parse_regulation([spec])

    def test_duplicate_target_rejected(self):
        with pytest.raises(ValueError, match="duplicate target"):
            parse_regulation(["stream:0=1/4", "stream:0=2/4"])

    def test_uniform_and_indexed_cannot_mix(self):
        with pytest.raises(ValueError, match="cannot be combined"):
            parse_regulation(["stream=1/4", "stream:1=1/2"])
        # Distinct scopes are fine.
        parse_regulation(["stream=1/4", "bank:1=1/2"])

    def test_index_range_checked_against_shape(self):
        validate_regulation(["stream:1=1/4"], n_ports=2, banks=8)
        with pytest.raises(ValueError, match="out of range"):
            validate_regulation(["stream:2=1/4"], n_ports=2, banks=8)
        with pytest.raises(ValueError, match="out of range"):
            validate_regulation(["bank:8=1/4"], n_ports=2, banks=8)

    def test_canonical_sorts_and_rerenders(self):
        specs = ["stream:2=1/4", "bank=2/3", "stream:0=1/2"]
        assert canonical_regulation(specs) == (
            "bank=2/3", "stream:0=1/2", "stream:2=1/4",
        )
        # Canonicalisation is idempotent.
        once = canonical_regulation(specs)
        assert canonical_regulation(once) == once

    def test_vacuity_and_renumbering_predicates(self):
        assert regulation_is_vacuous(["stream=4/4", "bank=9/2"])
        assert not regulation_is_vacuous(["stream=4/4", "bank=1/2"])
        assert regulation_renumbering_safe(["bank=1/2", "stream:0=1/4"])
        assert not regulation_renumbering_safe(["bank:3=1/2"])


class TestTokenBucket:
    def test_long_run_rate_is_exact(self):
        # rate/window = 1/4: exactly one admission per 4 clocks.
        bucket = TokenBucket(1, 4)
        grants = 0
        for _ in range(400):
            if bucket.admit():
                bucket.spend()
                grants += 1
            bucket.tick()
        assert grants == 100  # one admission per full window, exactly

    def test_level_stays_bounded(self):
        bucket = TokenBucket(3, 5)
        for clock in range(100):
            if clock % 7 == 0 and bucket.admit():
                bucket.spend()
            bucket.tick()
            assert 0 <= bucket.level <= bucket.cap

    def test_vacuous_bucket_never_vetoes(self):
        bucket = TokenBucket(4, 4)
        for _ in range(50):
            assert bucket.admit()
            bucket.spend()
            bucket.tick()


class TestPriorityArbiterDelegation:
    def test_matches_raw_rules_bit_for_bit(self):
        prio, intra = CyclicPriority(3), LRUPriority(3)
        ref_prio, ref_intra = CyclicPriority(3), LRUPriority(3)
        pol = PriorityArbiter(prio, intra)
        for cycle in range(24):
            contenders = [cycle % 3, (cycle + 1) % 3]
            contenders.sort()
            assert pol.rank_bank(contenders, 0, cycle) == ref_prio.choose(
                contenders, cycle
            )
            assert pol.rank_section(contenders, cycle) == ref_intra.choose(
                contenders, cycle
            )
            winner = pol.rank_bank(contenders, 0, cycle)
            pol.granted(winner, 0, cycle)
            ref_prio.granted(winner, cycle)
            pol.tick(cycle)
            ref_prio.tick(cycle)
            ref_intra.tick(cycle)
            assert pol.snapshot() == (
                ref_prio.snapshot(), ref_intra.snapshot()
            )

    def test_shared_rule_ticks_once(self):
        rule = BlockCyclicPriority(2, block=3)
        pol = PriorityArbiter(rule)  # intra defaults to the same object
        pol.tick(0)
        assert rule.snapshot() == (1,)

    def test_snapshot_restore_roundtrip_and_validation(self):
        pol = PriorityArbiter(CyclicPriority(2), LRUPriority(2))
        pol.granted(1, 0, cycle=0)
        pol.tick(0)
        snap = pol.snapshot()
        twin = PriorityArbiter(CyclicPriority(2), LRUPriority(2))
        twin.restore(snap)
        assert twin.snapshot() == snap
        with pytest.raises(ValueError, match="priority-arbiter snapshot"):
            twin.restore((1,))

    def test_never_regulated(self):
        pol = PriorityArbiter(FixedPriority())
        assert not pol.regulated
        assert pol.admit(0, 5, 0)
        assert pol.spec == "priority(fixed)"


class TestWeightedFair:
    def test_schedule_frequencies_match_weights(self):
        pol = WeightedFairArbiter([3, 1])
        favoured = []
        for cycle in range(8):
            favoured.append(pol.favoured(2, cycle))
            pol.tick(cycle)
        assert favoured.count(0) == 6 and favoured.count(1) == 2
        # Smooth WRR spreads the light port out, no starvation burst.
        assert favoured[:4].count(1) == 1

    def test_equal_weights_degenerate_to_cyclic(self):
        pol = WeightedFairArbiter([1, 1, 1])
        rule = CyclicPriority(3)
        for cycle in range(9):
            assert pol.rank_bank([0, 1, 2], None, cycle) == rule.choose(
                [0, 1, 2], cycle
            )
            pol.tick(cycle)
            rule.tick(cycle)

    def test_restore_validation(self):
        pol = WeightedFairArbiter([2, 1])
        with pytest.raises(ValueError, match="wfq snapshot"):
            pol.restore((1, 2))
        with pytest.raises(ValueError, match="out of range"):
            pol.restore((3,))  # schedule has sum(weights) = 3 slots
        pol.restore((2,))
        assert pol.snapshot() == (2,)

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            WeightedFairArbiter([])
        with pytest.raises(ValueError, match="positive integers"):
            WeightedFairArbiter([1, 0])
        with pytest.raises(ValueError, match="positive integers"):
            WeightedFairArbiter([1, True])


class TestRegulatedArbiter:
    def _make(self, specs, n_ports=2, banks=4):
        return make_arbiter(n_ports, banks, regulate=specs)

    def test_stream_bucket_vetoes_only_its_stream(self):
        pol = self._make(["stream:0=1/4"])
        assert pol.regulated
        pol.granted(0, 0, cycle=0)  # exhausts stream 0's bucket
        assert not pol.admit(0, 1, 1)
        assert pol.admit(1, 1, 1)  # stream 1 unregulated

    def test_bank_bucket_vetoes_every_port(self):
        pol = self._make(["bank:2=1/8"])
        pol.granted(1, 2, cycle=0)
        assert not pol.admit(0, 2, 1)
        assert not pol.admit(1, 2, 1)
        assert pol.admit(0, 3, 1)  # other banks unregulated

    def test_refill_readmits_at_the_exact_clock(self):
        pol = self._make(["stream=1/4"])
        pol.granted(0, 0, cycle=0)
        for cycle in range(3):
            pol.tick(cycle)
            assert not pol.admit(0, 0, cycle + 1)
        pol.tick(3)
        assert pol.admit(0, 0, 4)

    def test_uniform_spec_gives_independent_buckets(self):
        pol = self._make(["stream=1/4"])
        pol.granted(0, 0, cycle=0)
        assert not pol.admit(0, 1, 1)
        assert pol.admit(1, 1, 1)  # own bucket, still full

    def test_snapshot_restore_roundtrip(self):
        pol = self._make(["stream=1/4", "bank:1=2/4"])
        pol.granted(0, 1, cycle=0)
        pol.tick(0)
        snap = pol.snapshot()
        twin = self._make(["stream=1/4", "bank:1=2/4"])
        twin.restore(snap)
        assert twin.snapshot() == snap
        for port in range(2):
            for bank in range(4):
                assert twin.admit(port, bank, 1) == pol.admit(port, bank, 1)

    def test_restore_validation(self):
        pol = self._make(["stream=1/4"])
        with pytest.raises(ValueError, match="regulated-arbiter snapshot"):
            pol.restore(((), ()))  # wrong level count (2 buckets)
        with pytest.raises(ValueError, match="out of range"):
            pol.restore((((), ()), (99, 0)))
        with pytest.raises(ValueError, match="regulated-arbiter snapshot"):
            pol.restore("junk")

    def test_spec_renders_base_and_budget(self):
        pol = make_arbiter(
            2, 4, arbiter="wfq:3,1", regulate=["stream:0=1/4"]
        )
        assert pol.spec == "wfq:3,1+regulate(stream:0=1/4)"


class TestArbiterSpec:
    def test_canonical_default_and_wfq(self):
        assert canonical_arbiter(None, 2) is None
        assert canonical_arbiter("priority", 2) is None
        assert canonical_arbiter("wfq:03,1", 2) == "wfq:3,1"

    @pytest.mark.parametrize("spec,n", [
        ("wfq:a,b", 2), ("wfq:1", 2), ("wfq:1,2,3", 2), ("wfq:0,1", 2),
        ("wfq:-1,1", 2), ("rr", 2),
    ])
    def test_malformed_arbiter_specs(self, spec, n):
        with pytest.raises(ValueError, match="invalid arbiter spec"):
            canonical_arbiter(spec, n)

    def test_factory_builds_expected_types(self):
        assert isinstance(make_arbiter(2, 8), PriorityArbiter)
        assert isinstance(
            make_arbiter(2, 8, arbiter="wfq:1,1"), WeightedFairArbiter
        )
        assert isinstance(
            make_arbiter(2, 8, regulate=["stream=1/2"]), RegulatedArbiter
        )
