"""Unit tests for repro.sim.engine — the arbitration core."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core.stream import AccessStream
from repro.memory.config import MemoryConfig
from repro.sim.engine import Engine, simulate_streams
from repro.sim.port import Port
from repro.sim.stats import ConflictKind


def make_engine(config, cpu_of, streams, **kwargs):
    ports = [Port(index=i, cpu=c) for i, c in enumerate(cpu_of)]
    engine = Engine(config, ports, **kwargs)
    for port, stream in zip(ports, streams):
        port.assign(stream.bound(config.banks))
    return engine


class TestSinglePort:
    def test_unit_stride_one_grant_per_clock(self):
        cfg = MemoryConfig(banks=8, bank_cycle=4)
        eng = make_engine(cfg, [0], [AccessStream(0, 1)])
        eng.run(16)
        assert eng.stats.ports[0].grants == 16
        assert eng.stats.stall_cycles() == 0

    def test_self_conflict_bank_stalls(self):
        # m=8, d=4 ⇒ r=2 < n_c=4: two grants then two stalls per period.
        cfg = MemoryConfig(banks=8, bank_cycle=4)
        eng = make_engine(cfg, [0], [AccessStream(0, 4)])
        eng.run(16)
        assert eng.stats.ports[0].grants == 8
        assert eng.stats.stall_cycles(ConflictKind.BANK) == 8

    def test_conflicts_always_at_start_bank(self):
        # Section III-A: the only conflict point is the start bank.
        cfg = MemoryConfig(banks=8, bank_cycle=4)
        eng = make_engine(cfg, [0], [AccessStream(3, 4)], trace=True)
        eng.run(20)
        assert eng.trace is not None
        denial_banks = {
            d.bank for cyc in eng.trace.cycles for d in cyc.denials
        }
        assert denial_banks == {3}


class TestArbitrationPhases:
    def test_simultaneous_conflict_cross_cpu(self):
        # Two CPUs, same inactive bank, same clock: priority picks one.
        cfg = MemoryConfig(banks=8, bank_cycle=2)
        eng = make_engine(
            cfg, [0, 1], [AccessStream(0, 1), AccessStream(0, 1)]
        )
        eng.step()
        assert eng.stats.ports[0].grants == 1  # fixed priority: port 0
        assert eng.stats.ports[1].grants == 0
        assert (
            eng.stats.ports[1].stall_cycles[ConflictKind.SIMULTANEOUS] == 1
        )

    def test_section_conflict_same_cpu(self):
        # Same CPU, banks 0 and 2 share section 0 of s=2: path collision.
        cfg = MemoryConfig(banks=4, bank_cycle=1, sections=2)
        eng = make_engine(
            cfg, [0, 0], [AccessStream(0, 1), AccessStream(2, 1)]
        )
        eng.step()
        assert eng.stats.ports[0].grants == 1
        assert eng.stats.ports[1].stall_cycles[ConflictKind.SECTION] == 1

    def test_same_cpu_same_bank_is_section_conflict(self):
        # "That case will be treated as a section conflict" (III-B).
        cfg = MemoryConfig(banks=4, bank_cycle=1)
        eng = make_engine(
            cfg, [0, 0], [AccessStream(0, 1), AccessStream(0, 1)]
        )
        eng.step()
        assert eng.stats.ports[1].stall_cycles[ConflictKind.SECTION] == 1
        assert (
            eng.stats.ports[1].stall_cycles[ConflictKind.SIMULTANEOUS] == 0
        )

    def test_different_cpus_no_section_conflict(self):
        # Each CPU has its own path: banks 0 and 2 of section 0 proceed.
        cfg = MemoryConfig(banks=4, bank_cycle=1, sections=2)
        eng = make_engine(
            cfg, [0, 1], [AccessStream(0, 1), AccessStream(2, 1)]
        )
        eng.step()
        assert eng.stats.total_grants == 2

    def test_bank_conflict_beats_other_classifications(self):
        # A request to an *active* bank is a bank conflict even when a
        # sibling port contends for the same path this clock.
        cfg = MemoryConfig(banks=4, bank_cycle=3, sections=2)
        eng = make_engine(
            cfg, [0, 0], [AccessStream(0, 0), AccessStream(0, 2)]
        )
        # clock 0: port 0 granted bank 0; port 1 wants bank 0 too ->
        # section conflict (same path, inactive bank at arbitration).
        eng.step()
        assert eng.stats.ports[1].stall_cycles[ConflictKind.SECTION] == 1
        # clock 1: bank 0 now *active* -> port 1 records a bank conflict.
        eng.step()
        assert eng.stats.ports[1].stall_cycles[ConflictKind.BANK] == 1

    def test_cyclic_priority_alternates_winner(self):
        cfg = MemoryConfig(banks=8, bank_cycle=1)
        eng = make_engine(
            cfg,
            [0, 1],
            [AccessStream(0, 0), AccessStream(0, 0)],
            priority="cyclic",
        )
        eng.run(4)
        # with n_c = 1 the bank frees every clock; the rotating rule
        # shares it between the CPUs.
        g = eng.stats.per_port_grants()
        assert g[0] == g[1] == 2


class TestDynamicConflictResolution:
    def test_delayed_stream_stays_delayed(self):
        """A denial delays the whole stream: subsequent requests shift."""
        cfg = MemoryConfig(banks=8, bank_cycle=4)
        eng = make_engine(
            cfg, [0, 1], [AccessStream(0, 1), AccessStream(0, 1)],
            trace=True,
        )
        eng.run(10)
        # port 1 lost clock 0 (simultaneous), then trails port 0 by one
        # bank forever — all later requests shifted, no further stalls
        # because with this offset it follows in port 0's shadow.
        assert eng.stats.ports[1].stall_cycles[ConflictKind.SIMULTANEOUS] >= 1
        assert eng.stats.ports[0].grants == 10


class TestRunHelpers:
    def test_run_until_idle_finite(self):
        cfg = MemoryConfig(banks=8, bank_cycle=2)
        eng = make_engine(cfg, [0], [AccessStream(0, 1, length=5)])
        done_at = eng.run_until_idle()
        assert done_at == 5
        assert eng.stats.ports[0].grants == 5

    def test_run_until_idle_rejects_infinite(self):
        cfg = MemoryConfig(banks=8, bank_cycle=2)
        eng = make_engine(cfg, [0], [AccessStream(0, 1)])
        with pytest.raises(ValueError):
            eng.run_until_idle()

    def test_run_until_idle_bound(self):
        cfg = MemoryConfig(banks=8, bank_cycle=2)
        eng = make_engine(cfg, [0], [AccessStream(0, 1, length=100)])
        with pytest.raises(RuntimeError):
            eng.run_until_idle(max_cycles=10)

    def test_run_negative(self):
        cfg = MemoryConfig(banks=8, bank_cycle=2)
        eng = make_engine(cfg, [0], [AccessStream(0, 1)])
        with pytest.raises(ValueError):
            eng.run(-1)

    def test_port_index_validation(self):
        cfg = MemoryConfig(banks=8, bank_cycle=2)
        with pytest.raises(ValueError):
            Engine(cfg, [Port(index=1)])
        with pytest.raises(ValueError):
            Engine(cfg, [])


class TestSteadyState:
    def test_matches_closed_form_single(self):
        cfg = MemoryConfig(banks=8, bank_cycle=4)
        eng = make_engine(cfg, [0], [AccessStream(0, 4)])
        bw, period, grants, start = eng.run_to_steady_state()
        assert bw == Fraction(1, 2)
        assert grants == (period // 2,)

    def test_conflict_free_pair(self):
        cfg = MemoryConfig(banks=12, bank_cycle=3)
        eng = make_engine(
            cfg, [0, 1], [AccessStream(0, 1), AccessStream(3, 7)]
        )
        bw, period, grants, start = eng.run_to_steady_state()
        assert bw == 2
        assert grants[0] == grants[1] == period

    def test_rejects_finite_streams(self):
        cfg = MemoryConfig(banks=8, bank_cycle=2)
        eng = make_engine(cfg, [0], [AccessStream(0, 1, length=5)])
        with pytest.raises(ValueError):
            eng.run_to_steady_state()

    def test_deterministic(self):
        cfg = MemoryConfig(banks=13, bank_cycle=6)
        a = make_engine(cfg, [0, 1], [AccessStream(0, 1), AccessStream(0, 6)])
        b = make_engine(cfg, [0, 1], [AccessStream(0, 1), AccessStream(0, 6)])
        assert a.run_to_steady_state()[:2] == b.run_to_steady_state()[:2]


class TestSimulateStreamsFrontend:
    def test_steady_result_fields(self):
        cfg = MemoryConfig(banks=12, bank_cycle=3)
        res = simulate_streams(
            cfg,
            [AccessStream(0, 1), AccessStream(3, 7)],
            cpus=[0, 1],
            steady=True,
        )
        assert res.steady_bandwidth == 2
        assert res.bandwidth() == 2
        assert res.steady_period is not None
        assert res.steady_grants is not None

    def test_fixed_cycles(self):
        cfg = MemoryConfig(banks=12, bank_cycle=3)
        res = simulate_streams(
            cfg, [AccessStream(0, 1)], cpus=[0], cycles=50
        )
        assert res.cycles == 50
        assert res.measured_bandwidth == 1

    def test_finite_until_idle(self):
        cfg = MemoryConfig(banks=12, bank_cycle=3)
        res = simulate_streams(cfg, [AccessStream(0, 1, length=7)], cpus=[0])
        assert res.stats.total_grants == 7

    def test_cpus_default_same_cpu(self):
        cfg = MemoryConfig(banks=4, bank_cycle=1)
        res = simulate_streams(
            cfg,
            [AccessStream(0, 1), AccessStream(0, 1)],
            cycles=1,
        )
        # defaulting to one CPU means a section conflict on clock 0
        assert res.stats.episodes(ConflictKind.SECTION) == 1

    def test_mutually_exclusive_args(self):
        cfg = MemoryConfig(banks=4, bank_cycle=1)
        with pytest.raises(ValueError):
            simulate_streams(
                cfg, [AccessStream(0, 1)], cycles=5, steady=True
            )

    def test_cpus_length_mismatch(self):
        cfg = MemoryConfig(banks=4, bank_cycle=1)
        with pytest.raises(ValueError):
            simulate_streams(cfg, [AccessStream(0, 1)], cpus=[0, 1])
