"""Edge-case and robustness tests for the simulation engine."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core.stream import AccessStream
from repro.memory.config import MemoryConfig
from repro.sim.engine import Engine, simulate_streams
from repro.sim.port import Port
from repro.sim.priority import LRUPriority


def build(config, cpu_of, streams, **kw):
    ports = [Port(index=i, cpu=c) for i, c in enumerate(cpu_of)]
    eng = Engine(config, ports, **kw)
    for p, s in zip(ports, streams):
        p.assign(s.bound(config.banks))
    return eng


class TestResultPackaging:
    def test_result_reflects_run(self):
        cfg = MemoryConfig(banks=8, bank_cycle=2)
        eng = build(cfg, [0], [AccessStream(0, 1)])
        eng.run(10)
        res = eng.result()
        assert res.cycles == 10
        assert res.measured_bandwidth == 1
        assert res.steady_bandwidth is None
        assert res.bandwidth() == 1  # falls back to measured

    def test_bandwidth_prefers_steady(self):
        cfg = MemoryConfig(banks=8, bank_cycle=4)
        res = simulate_streams(
            cfg, [AccessStream(0, 4)], cpus=[0], steady=True
        )
        # measured includes the conflict-free prefix; steady is exact.
        assert res.bandwidth() == Fraction(1, 2)
        assert res.measured_bandwidth >= res.bandwidth()


class TestThreeCpus:
    def test_three_cpus_no_section_coupling(self):
        """Sections gate per CPU: three CPUs on one section proceed in
        parallel bank-wise, colliding only on the banks themselves."""
        cfg = MemoryConfig(banks=6, bank_cycle=2, sections=2)
        eng = build(
            cfg,
            [0, 1, 2],
            [AccessStream(0, 1), AccessStream(2, 1), AccessStream(4, 1)],
        )
        eng.run(30)
        assert eng.stats.total_grants == 90  # all full rate


class TestLruEndToEnd:
    def test_lru_shares_a_contended_bank(self):
        """Two stride-0 streams on one bank: LRU alternates the winner."""
        cfg = MemoryConfig(banks=4, bank_cycle=1)
        eng = build(
            cfg, [0, 1], [AccessStream(0, 0), AccessStream(0, 0)],
            priority=LRUPriority(2),
        )
        eng.run(20)
        g = eng.stats.per_port_grants()
        assert abs(g[0] - g[1]) <= 1

    def test_lru_steady_state_detectable(self):
        cfg = MemoryConfig(banks=4, bank_cycle=1)
        eng = build(
            cfg, [0, 1], [AccessStream(0, 0), AccessStream(0, 0)],
            priority=LRUPriority(2),
        )
        bw, period, grants, start = eng.run_to_steady_state()
        assert bw == 1  # the bank serves one grant per clock
        assert grants[0] == grants[1]


class TestMixedFiniteInfinite:
    def test_finite_stream_drains_among_infinite(self):
        cfg = MemoryConfig(banks=8, bank_cycle=2)
        eng = build(
            cfg,
            [0, 1],
            [AccessStream(0, 1, length=5), AccessStream(4, 1)],
        )
        eng.run(20)
        assert eng.stats.ports[0].grants == 5
        assert eng.stats.ports[1].grants == 20

    def test_steady_rejects_mixed(self):
        cfg = MemoryConfig(banks=8, bank_cycle=2)
        eng = build(
            cfg,
            [0, 1],
            [AccessStream(0, 1, length=5), AccessStream(4, 1)],
        )
        with pytest.raises(ValueError):
            eng.run_to_steady_state()


class TestIdlePortsDoNotPerturb:
    def test_unassigned_port_is_inert(self):
        cfg = MemoryConfig(banks=8, bank_cycle=2)
        ports = [Port(index=0), Port(index=1)]
        eng = Engine(cfg, ports)
        ports[0].assign(AccessStream(0, 1))
        # port 1 never assigned
        eng.run(12)
        assert eng.stats.ports[0].grants == 12
        assert eng.stats.ports[1].grants == 0
        assert eng.stats.ports[1].total_stall_cycles == 0


class TestTraceBoundInteraction:
    def test_trace_stops_but_sim_continues(self):
        from repro.sim.trace import TraceRecorder

        cfg = MemoryConfig(banks=8, bank_cycle=2)
        ports = [Port(index=0)]
        eng = Engine(cfg, ports, trace=TraceRecorder(max_cycles=5))
        ports[0].assign(AccessStream(0, 1))
        eng.run(20)
        assert eng.stats.ports[0].grants == 20
        assert eng.trace is not None and len(eng.trace) == 5


class TestSplitPriorityRules:
    def test_default_single_rule_serves_both(self):
        cfg = MemoryConfig(banks=8, bank_cycle=2)
        eng = build(cfg, [0], [AccessStream(0, 1)], priority="cyclic")
        assert eng.intra_priority is eng.priority

    def test_xmp_style_combo(self):
        """Fixed intra-CPU (port role) + rotating inter-CPU priority:
        the section loser is decided by the fixed rule, the cross-CPU
        bank tie by the rotating one."""
        from repro.sim.stats import ConflictKind

        cfg = MemoryConfig(banks=4, bank_cycle=1, sections=2)
        # ports 0,1 on CPU 0 share section 0; port 2 on CPU 1 wants the
        # same bank as port 0.
        eng = build(
            cfg,
            [0, 0, 1],
            [AccessStream(0, 0), AccessStream(2, 0), AccessStream(0, 0)],
            priority="cyclic",
            intra_priority="fixed",
        )
        eng.run(12)
        # intra: port 0 always beats port 1 on the shared path...
        assert eng.stats.ports[1].grants == 0
        assert eng.stats.ports[1].stall_cycles[ConflictKind.SECTION] == 12
        # ...while the rotating inter-CPU rule shares bank 0 between
        # ports 0 and 2 (2:1 for port 2 — the rotation covers three
        # ports, and port 2 is closer to the favoured slot in two of
        # every three phases).  Crucially: no starvation.
        g0, g2 = eng.stats.ports[0].grants, eng.stats.ports[2].grants
        assert g0 > 0 and g2 > 0
        assert g0 + g2 == 12  # bank 0 serves every clock (n_c = 1)

    def test_split_rules_participate_in_steady_state(self):
        cfg = MemoryConfig(banks=12, bank_cycle=3, sections=3)
        eng = build(
            cfg,
            [0, 0],
            [AccessStream(0, 1), AccessStream(1, 1)],
            priority="fixed",
            intra_priority="block-cyclic:3",
        )
        bw, period, grants, start = eng.run_to_steady_state()
        # the paper's block rule applied intra-CPU frees the Fig. 8 pair
        assert bw == 2
