"""Unit tests for repro.sim.multi (k-stream simulation)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.memory.config import MemoryConfig
from repro.sim.multi import equal_stride_table, simulate_multi


@pytest.fixture
def cfg():
    return MemoryConfig(banks=16, bank_cycle=4)


class TestSimulateMulti:
    def test_single_stream(self, cfg):
        r = simulate_multi(cfg, [(0, 1)])
        assert r.bandwidth == 1
        assert r.conflict_free
        assert r.full_rate_streams == 1

    def test_four_staggered_streams_saturate_capacity(self, cfg):
        specs = [(0, 1), (4, 1), (8, 1), (12, 1)]
        r = simulate_multi(cfg, specs)
        assert r.bandwidth == 4
        assert r.conflict_free

    def test_six_streams_capped_at_m_over_nc(self, cfg):
        # The Section IV remark: 6 n_c = 24 > 16 banks -> b_eff <= 4.
        specs = [((i * 4) % 16, 1) for i in range(6)]
        r = simulate_multi(cfg, specs)
        assert r.bandwidth == 4
        assert not r.conflict_free

    def test_same_cpu_triggers_sections(self):
        cfg = MemoryConfig(banks=16, bank_cycle=4, sections=4)
        # two streams on one CPU, both in section 0 every clock
        r = simulate_multi(cfg, [(0, 4), (8, 4)], cpus=[0, 0])
        assert r.bandwidth < 2

    def test_priority_parameter(self, cfg):
        r = simulate_multi(cfg, [(0, 0), (0, 0)], priority="cyclic")
        # two stride-0 streams on one bank: cyclic shares 1/n_c rate
        assert r.bandwidth == Fraction(1, 4)

    def test_validation(self, cfg):
        with pytest.raises(ValueError):
            simulate_multi(cfg, [])


class TestEqualStrideTable:
    def test_monotone_then_flat(self, cfg):
        table = equal_stride_table(cfg, 1, 8)
        values = [table[p] for p in range(1, 9)]
        assert values == sorted(values)
        assert values[-1] == 4  # capacity m/n_c

    def test_unstaggered_still_converges(self, cfg):
        # identical start banks: the dynamic conflict resolution spreads
        # the streams out ("synchronization"), reaching the same plateau.
        table = equal_stride_table(cfg, 1, 6, staggered=False)
        assert table[6] == 4

    def test_self_conflicting_stride_flat(self, cfg):
        table = equal_stride_table(cfg, 8, 4)
        # r=2 ring: aggregate capacity r/n_c = 1/2 regardless of p >= 1.
        assert table[1] == Fraction(1, 2)
        assert table[4] == Fraction(1, 2)
