"""Unit tests for repro.sim.pairs."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.memory.config import MemoryConfig
from repro.sim.pairs import (
    ObservedRegime,
    bandwidth_by_offset,
    best_offset,
    offsets_achieving,
    simulate_pair,
    worst_offset,
)


class TestSimulatePair:
    def test_conflict_free(self, fig2):
        pr = simulate_pair(fig2, 1, 7, b2=3)
        assert pr.bandwidth == 2
        assert pr.regime is ObservedRegime.CONFLICT_FREE
        assert pr.grants[0] == pr.grants[1] == pr.period

    def test_barrier(self, fig3):
        pr = simulate_pair(fig3, 1, 6, b2=0)
        assert pr.bandwidth == Fraction(7, 6)
        assert pr.regime is ObservedRegime.BARRIER_ON_2

    def test_double_conflict(self, fig3):
        pr = simulate_pair(fig3, 1, 6, b2=1)
        assert pr.regime is ObservedRegime.MUTUAL
        assert pr.bandwidth < Fraction(7, 6)

    def test_inverted_barrier(self, fig5):
        pr = simulate_pair(fig5, 1, 3, b2=1)
        assert pr.regime is ObservedRegime.BARRIER_ON_1

    def test_same_cpu_activates_sections(self, fig7):
        cf = simulate_pair(fig7, 1, 1, b2=3, same_cpu=True)
        assert cf.bandwidth == 2
        clash = simulate_pair(fig7, 1, 1, b2=2, same_cpu=True)
        assert clash.bandwidth < 2

    def test_bandwidth_float(self, fig3):
        pr = simulate_pair(fig3, 1, 6, b2=0)
        assert pr.bandwidth_float == pytest.approx(7 / 6)


class TestOffsetSweeps:
    def test_table_covers_all_offsets(self, fig2):
        table = bandwidth_by_offset(fig2, 1, 7)
        assert sorted(table) == list(range(12))

    def test_synchronizing_pair_flat_table(self, fig2):
        # Theorem 3 pairs synchronize: every start reaches 2.
        table = bandwidth_by_offset(fig2, 1, 7)
        assert set(table.values()) == {Fraction(2)}

    def test_custom_offsets(self, fig3):
        table = bandwidth_by_offset(fig3, 1, 6, offsets=[0, 1])
        assert set(table) == {0, 1}

    def test_best_and_worst(self, fig3):
        off_best, bw_best = best_offset(fig3, 1, 6)
        off_worst, bw_worst = worst_offset(fig3, 1, 6)
        assert bw_best == Fraction(7, 6)
        assert bw_worst < bw_best
        assert off_best != off_worst

    def test_offsets_achieving(self, fig3):
        hits = offsets_achieving(fig3, 1, 6, Fraction(7, 6))
        assert 0 in hits
        # every listed offset really achieves it
        for off in hits:
            assert simulate_pair(fig3, 1, 6, b2=off).bandwidth == Fraction(7, 6)
