"""Unit tests for repro.sim.port."""

from __future__ import annotations

import pytest

from repro.core.stream import AccessStream
from repro.sim.port import Port


class TestAssignment:
    def test_fresh_port_is_idle(self):
        assert Port(index=0).idle

    def test_default_label_is_one_based(self):
        assert Port(index=0).label == "1"
        assert Port(index=3).label == "4"

    def test_assign_infinite(self):
        p = Port(index=0)
        p.assign(AccessStream(0, 1))
        assert not p.idle

    def test_assign_label_inherited(self):
        p = Port(index=1)
        p.assign(AccessStream(0, 1))
        assert p.stream is not None and p.stream.label == "2"

    def test_assign_keeps_explicit_label(self):
        p = Port(index=1)
        p.assign(AccessStream(0, 1, label="B-load"))
        assert p.stream is not None and p.stream.label == "B-load"

    def test_cannot_reassign_busy_port(self):
        p = Port(index=0)
        p.assign(AccessStream(0, 1))
        with pytest.raises(RuntimeError):
            p.assign(AccessStream(0, 2))

    def test_reassign_after_drain(self):
        p = Port(index=0)
        p.assign(AccessStream(0, 1, length=1))
        p.advance()
        assert p.idle
        p.assign(AccessStream(5, 2, length=3))
        assert p.current_bank(8) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            Port(index=-1)
        with pytest.raises(ValueError):
            Port(index=0, cpu=-1)


class TestRequestProtocol:
    def test_current_bank_walks_on_advance(self):
        p = Port(index=0)
        p.assign(AccessStream(start_bank=3, stride=7))
        assert p.current_bank(12) == 3
        p.advance()
        assert p.current_bank(12) == 10
        assert p.position == 1
        assert p.granted_total == 1

    def test_denial_is_implicit(self):
        # A denied port simply does not advance; the request repeats.
        p = Port(index=0)
        p.assign(AccessStream(0, 5))
        before = p.current_bank(12)
        # ... engine denies: nothing to call ...
        assert p.current_bank(12) == before

    def test_finite_stream_drains(self):
        p = Port(index=0)
        p.assign(AccessStream(0, 1, length=2))
        p.advance()
        p.advance()
        assert p.idle
        with pytest.raises(RuntimeError):
            p.current_bank(8)
        with pytest.raises(RuntimeError):
            p.advance()

    def test_granted_total_spans_streams(self):
        p = Port(index=0)
        p.assign(AccessStream(0, 1, length=2))
        p.advance()
        p.advance()
        p.assign(AccessStream(0, 1, length=1))
        p.advance()
        assert p.granted_total == 3


class TestSnapshots:
    def test_snapshot_bank(self):
        p = Port(index=0)
        assert p.snapshot_bank(8) is None
        p.assign(AccessStream(2, 3))
        assert p.snapshot_bank(8) == 2
        p.advance()
        assert p.snapshot_bank(8) == 5

    def test_reset(self):
        p = Port(index=0)
        p.assign(AccessStream(0, 1))
        p.advance()
        p.reset()
        assert p.idle and p.granted_total == 0
