"""Unit tests for repro.sim.priority."""

from __future__ import annotations

import pytest

from repro.sim.priority import (
    CyclicPriority,
    FixedPriority,
    LRUPriority,
    make_priority,
)


class TestFixed:
    def test_lowest_index_wins(self):
        rule = FixedPriority()
        assert rule.choose([2, 0, 5], cycle=0) == 0
        assert rule.choose([3], cycle=7) == 3

    def test_stateless(self):
        rule = FixedPriority()
        rule.tick(0)
        rule.granted(1, 0)
        assert rule.snapshot() == ()
        assert rule.choose([1, 2], 100) == 1

    def test_empty_contenders(self):
        with pytest.raises(ValueError):
            FixedPriority().choose([], 0)


class TestCyclic:
    def test_rotation_changes_winner(self):
        rule = CyclicPriority(3)
        assert rule.choose([0, 1, 2], 0) == 0
        rule.tick(0)
        assert rule.choose([0, 1, 2], 1) == 1
        rule.tick(1)
        assert rule.choose([0, 1, 2], 2) == 2
        rule.tick(2)
        assert rule.choose([0, 1, 2], 3) == 0  # wrapped

    def test_favoured_absent(self):
        rule = CyclicPriority(4)
        rule.tick(0)  # offset 1
        # contenders 0 and 3: distances (0-1)%4=3, (3-1)%4=2 ⇒ 3 wins.
        assert rule.choose([0, 3], 1) == 3

    def test_fairness_over_window(self):
        rule = CyclicPriority(2)
        wins = [0, 0]
        for t in range(10):
            wins[rule.choose([0, 1], t)] += 1
            rule.tick(t)
        assert wins == [5, 5]

    def test_snapshot_roundtrip(self):
        rule = CyclicPriority(3)
        rule.tick(0)
        snap = rule.snapshot()
        rule.tick(1)
        rule.restore(snap)
        assert rule.choose([0, 1, 2], 9) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            CyclicPriority(0)
        with pytest.raises(ValueError):
            CyclicPriority(2).choose([], 0)


class TestLRU:
    def test_never_granted_ties_break_by_index(self):
        rule = LRUPriority(3)
        assert rule.choose([1, 2], 0) == 1

    def test_recent_grant_loses(self):
        rule = LRUPriority(3)
        rule.granted(0, 0)
        assert rule.choose([0, 1], 1) == 1
        rule.granted(1, 1)
        assert rule.choose([0, 1], 2) == 0

    def test_snapshot_is_rank_based(self):
        # Absolute timestamps must not leak into the state key (they
        # grow without bound and would defeat cycle detection).
        a = LRUPriority(2)
        a.granted(0, 5)
        a.granted(1, 9)
        b = LRUPriority(2)
        b.granted(0, 100)
        b.granted(1, 200)
        assert a.snapshot() == b.snapshot()

    def test_restore_preserves_order(self):
        rule = LRUPriority(3)
        rule.granted(2, 0)
        rule.granted(0, 1)
        snap = rule.snapshot()
        fresh = LRUPriority(3)
        fresh.restore(snap)
        # 1 never granted -> wins; then 2 (older) over 0.
        assert fresh.choose([0, 1, 2], 5) == 1
        assert fresh.choose([0, 2], 5) == 2


class TestFactory:
    def test_names(self):
        assert isinstance(make_priority("fixed", 2), FixedPriority)
        assert isinstance(make_priority("cyclic", 2), CyclicPriority)
        assert isinstance(make_priority("lru", 2), LRUPriority)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_priority("coin-flip", 2)

    def test_rule_name_property(self):
        assert make_priority("cyclic", 2).name == "cyclic"
        assert make_priority("lru", 2).name == "lru"


class TestBlockCyclic:
    def test_holds_priority_for_block_clocks(self):
        from repro.sim.priority import BlockCyclicPriority

        rule = BlockCyclicPriority(2, block=3)
        winners = []
        for t in range(12):
            winners.append(rule.choose([0, 1], t))
            rule.tick(t)
        assert winners == [0, 0, 0, 1, 1, 1, 0, 0, 0, 1, 1, 1]

    def test_block_one_matches_cyclic(self):
        from repro.sim.priority import BlockCyclicPriority, CyclicPriority

        a = BlockCyclicPriority(3, block=1)
        b = CyclicPriority(3)
        for t in range(9):
            assert a.choose([0, 1, 2], t) == b.choose([0, 1, 2], t)
            a.tick(t)
            b.tick(t)

    def test_snapshot_roundtrip(self):
        from repro.sim.priority import BlockCyclicPriority

        rule = BlockCyclicPriority(2, block=3)
        for t in range(4):
            rule.tick(t)
        snap = rule.snapshot()
        fresh = BlockCyclicPriority(2, block=3)
        fresh.restore(snap)
        assert fresh.choose([0, 1], 9) == rule.choose([0, 1], 9)

    def test_factory_spelling(self):
        from repro.sim.priority import BlockCyclicPriority

        rule = make_priority("block-cyclic:4", 2)
        assert isinstance(rule, BlockCyclicPriority)
        assert rule.block == 4
        assert rule.name == "block-cyclic(4)"

    def test_validation(self):
        from repro.sim.priority import BlockCyclicPriority

        with pytest.raises(ValueError):
            BlockCyclicPriority(0, 3)
        with pytest.raises(ValueError):
            BlockCyclicPriority(2, 0)
        with pytest.raises(ValueError):
            BlockCyclicPriority(2, 3).choose([], 0)

    def test_resolves_fig8_from_both_paper_starts(self):
        """The paper's Fig. 8b header shows priority rotating every
        n_c = 3 clocks; that exact rule frees the linked conflict at
        both b2=0 and b2=1 — per-clock rotation only manages b2=1."""
        from repro.memory.config import FIG8_CONFIG
        from repro.sim.pairs import simulate_pair

        for b2 in (0, 1):
            pr = simulate_pair(
                FIG8_CONFIG, 1, 1, b2=b2, same_cpu=True,
                priority="block-cyclic:3",
            )
            assert pr.bandwidth == 2, b2
