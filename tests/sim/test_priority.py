"""Unit tests for repro.sim.priority."""

from __future__ import annotations

import pytest

from repro.sim.priority import (
    CyclicPriority,
    FixedPriority,
    LRUPriority,
    make_priority,
)


class TestFixed:
    def test_lowest_index_wins(self):
        rule = FixedPriority()
        assert rule.choose([2, 0, 5], cycle=0) == 0
        assert rule.choose([3], cycle=7) == 3

    def test_stateless(self):
        rule = FixedPriority()
        rule.tick(0)
        rule.granted(1, 0)
        assert rule.snapshot() == ()
        assert rule.choose([1, 2], 100) == 1

    def test_empty_contenders(self):
        with pytest.raises(ValueError):
            FixedPriority().choose([], 0)


class TestCyclic:
    def test_rotation_changes_winner(self):
        rule = CyclicPriority(3)
        assert rule.choose([0, 1, 2], 0) == 0
        rule.tick(0)
        assert rule.choose([0, 1, 2], 1) == 1
        rule.tick(1)
        assert rule.choose([0, 1, 2], 2) == 2
        rule.tick(2)
        assert rule.choose([0, 1, 2], 3) == 0  # wrapped

    def test_favoured_absent(self):
        rule = CyclicPriority(4)
        rule.tick(0)  # offset 1
        # contenders 0 and 3: distances (0-1)%4=3, (3-1)%4=2 ⇒ 3 wins.
        assert rule.choose([0, 3], 1) == 3

    def test_fairness_over_window(self):
        rule = CyclicPriority(2)
        wins = [0, 0]
        for t in range(10):
            wins[rule.choose([0, 1], t)] += 1
            rule.tick(t)
        assert wins == [5, 5]

    def test_snapshot_roundtrip(self):
        rule = CyclicPriority(3)
        rule.tick(0)
        snap = rule.snapshot()
        rule.tick(1)
        rule.restore(snap)
        assert rule.choose([0, 1, 2], 9) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            CyclicPriority(0)
        with pytest.raises(ValueError):
            CyclicPriority(2).choose([], 0)


class TestLRU:
    def test_never_granted_ties_break_by_index(self):
        rule = LRUPriority(3)
        assert rule.choose([1, 2], 0) == 1

    def test_recent_grant_loses(self):
        rule = LRUPriority(3)
        rule.granted(0, 0)
        assert rule.choose([0, 1], 1) == 1
        rule.granted(1, 1)
        assert rule.choose([0, 1], 2) == 0

    def test_snapshot_is_rank_based(self):
        # Absolute timestamps must not leak into the state key (they
        # grow without bound and would defeat cycle detection).
        a = LRUPriority(2)
        a.granted(0, 5)
        a.granted(1, 9)
        b = LRUPriority(2)
        b.granted(0, 100)
        b.granted(1, 200)
        assert a.snapshot() == b.snapshot()

    def test_restore_preserves_order(self):
        rule = LRUPriority(3)
        rule.granted(2, 0)
        rule.granted(0, 1)
        snap = rule.snapshot()
        fresh = LRUPriority(3)
        fresh.restore(snap)
        # 1 never granted -> wins; then 2 (older) over 0.
        assert fresh.choose([0, 1, 2], 5) == 1
        assert fresh.choose([0, 2], 5) == 2


class TestFactory:
    def test_names(self):
        assert isinstance(make_priority("fixed", 2), FixedPriority)
        assert isinstance(make_priority("cyclic", 2), CyclicPriority)
        assert isinstance(make_priority("lru", 2), LRUPriority)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_priority("coin-flip", 2)

    def test_rule_name_property(self):
        assert make_priority("cyclic", 2).name == "cyclic"
        assert make_priority("lru", 2).name == "lru"


class TestBlockCyclic:
    def test_holds_priority_for_block_clocks(self):
        from repro.sim.priority import BlockCyclicPriority

        rule = BlockCyclicPriority(2, block=3)
        winners = []
        for t in range(12):
            winners.append(rule.choose([0, 1], t))
            rule.tick(t)
        assert winners == [0, 0, 0, 1, 1, 1, 0, 0, 0, 1, 1, 1]

    def test_block_one_matches_cyclic(self):
        from repro.sim.priority import BlockCyclicPriority, CyclicPriority

        a = BlockCyclicPriority(3, block=1)
        b = CyclicPriority(3)
        for t in range(9):
            assert a.choose([0, 1, 2], t) == b.choose([0, 1, 2], t)
            a.tick(t)
            b.tick(t)

    def test_snapshot_roundtrip(self):
        from repro.sim.priority import BlockCyclicPriority

        rule = BlockCyclicPriority(2, block=3)
        for t in range(4):
            rule.tick(t)
        snap = rule.snapshot()
        fresh = BlockCyclicPriority(2, block=3)
        fresh.restore(snap)
        assert fresh.choose([0, 1], 9) == rule.choose([0, 1], 9)

    def test_factory_spelling(self):
        from repro.sim.priority import BlockCyclicPriority

        rule = make_priority("block-cyclic:4", 2)
        assert isinstance(rule, BlockCyclicPriority)
        assert rule.block == 4
        assert rule.name == "block-cyclic(4)"

    def test_validation(self):
        from repro.sim.priority import BlockCyclicPriority

        with pytest.raises(ValueError):
            BlockCyclicPriority(0, 3)
        with pytest.raises(ValueError):
            BlockCyclicPriority(2, 0)
        with pytest.raises(ValueError):
            BlockCyclicPriority(2, 3).choose([], 0)

    def test_resolves_fig8_from_both_paper_starts(self):
        """The paper's Fig. 8b header shows priority rotating every
        n_c = 3 clocks; that exact rule frees the linked conflict at
        both b2=0 and b2=1 — per-clock rotation only manages b2=1."""
        from repro.memory.config import FIG8_CONFIG
        from repro.sim.pairs import simulate_pair

        for b2 in (0, 1):
            pr = simulate_pair(
                FIG8_CONFIG, 1, 1, b2=b2, same_cpu=True,
                priority="block-cyclic:3",
            )
            assert pr.bandwidth == 2, b2


class TestLRURestoreEarly:
    """Regression: restore used to write ranks straight back as
    timestamps, so a synthetic timestamp (up to n-1) could compare
    *newer* than a real grant made at a cycle below n-1 — inverting
    LRU order right after an early restore.  The fix maps rank r to
    the negative timestamp r - n_ports, older than any real cycle."""

    def test_restored_twin_tracks_original_before_cycle_n(self):
        original = LRUPriority(3)
        original.granted(0, cycle=0)
        twin = LRUPriority(3)
        twin.restore(original.snapshot())
        # Same event on both at a cycle still below n_ports ...
        original.granted(1, cycle=1)
        twin.granted(1, cycle=1)
        # ... must leave them agreeing (port 2 is least recent).
        assert original.choose([0, 1, 2], 2) == 2
        assert twin.choose([0, 1, 2], 2) == 2
        assert twin.snapshot() == original.snapshot()

    def test_restore_preserves_order_against_fresh_grants(self):
        rule = LRUPriority(4)
        for port, cycle in ((2, 0), (0, 1), (3, 2)):
            rule.granted(port, cycle)
        snap = rule.snapshot()
        twin = LRUPriority(4)
        twin.restore(snap)
        for cycle in range(3, 12):
            contenders = [0, 1, 2, 3]
            assert twin.choose(contenders, cycle) == rule.choose(
                contenders, cycle
            ), cycle
            winner = rule.choose(contenders, cycle)
            rule.granted(winner, cycle)
            twin.granted(winner, cycle)


class TestRestoreValidation:
    def test_cyclic_rejects_mismatched_shapes(self):
        rule = CyclicPriority(3)
        with pytest.raises(ValueError, match="cyclic snapshot"):
            rule.restore(())
        with pytest.raises(ValueError, match="cyclic snapshot"):
            rule.restore((0, 1))
        with pytest.raises(ValueError, match="only integers"):
            rule.restore(("1",))
        with pytest.raises(ValueError, match="out of range"):
            rule.restore((3,))
        with pytest.raises(ValueError, match="out of range"):
            rule.restore((-1,))

    def test_block_cyclic_rejects_foreign_phase(self):
        from repro.sim.priority import BlockCyclicPriority

        rule = BlockCyclicPriority(2, block=3)
        with pytest.raises(ValueError, match="block-cyclic snapshot"):
            rule.restore((1, 2))
        with pytest.raises(ValueError, match="out of range"):
            rule.restore((6,))  # full rotation is block * n_ports = 6
        rule.restore((5,))  # the last valid phase is fine

    def test_lru_rejects_non_permutations(self):
        rule = LRUPriority(3)
        with pytest.raises(ValueError, match="permutation"):
            rule.restore((0, 0, 1))
        with pytest.raises(ValueError, match="permutation"):
            rule.restore((0, 1, 3))
        with pytest.raises(ValueError, match="lru snapshot"):
            rule.restore((0, 1))
        with pytest.raises(ValueError, match="only integers"):
            rule.restore((0, 1, True))

    def test_cross_rule_snapshot_names_the_rule(self):
        lru = LRUPriority(2)
        cyclic = CyclicPriority(2)
        with pytest.raises(ValueError, match="cyclic snapshot"):
            cyclic.restore(lru.snapshot())


class TestSpecGrammar:
    def test_parse_known_kinds(self):
        from repro.sim.priority import parse_priority

        assert parse_priority("fixed") == ("fixed", 1)
        assert parse_priority("cyclic") == ("cyclic", 1)
        assert parse_priority("lru") == ("lru", 1)
        assert parse_priority("block-cyclic:7") == ("block-cyclic", 7)

    @pytest.mark.parametrize("spec", [
        "block-cyclic:x", "block-cyclic:", "block-cyclic:0",
        "block-cyclic:-2", "block-cyclic", "round-robin", "", "FIXED",
    ])
    def test_malformed_specs_fail_clearly(self, spec):
        from repro.sim.priority import parse_priority

        with pytest.raises(ValueError, match="invalid priority spec"):
            parse_priority(spec)
        with pytest.raises(ValueError, match="invalid priority spec"):
            make_priority(spec, 2)
