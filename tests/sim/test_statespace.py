"""Unit tests for repro.sim.statespace."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.memory.config import MemoryConfig
from repro.sim.statespace import start_space_profile, trajectory


class TestTrajectory:
    def test_conflict_free_pair_short_transient(self, fig2):
        t = trajectory(fig2, [(0, 1), (3, 7)])
        assert t.bandwidth == 2
        assert t.period >= 1
        assert t.states_visited == t.transient + t.period

    def test_single_self_conflicting_stream(self):
        cfg = MemoryConfig(banks=8, bank_cycle=4)
        t = trajectory(cfg, [(0, 4)])
        assert t.bandwidth == Fraction(1, 2)
        assert t.period == 4  # n_c-clock service cycle

    def test_synchronization_has_nonzero_transient(self, fig2):
        # b2=0 start collides once, then settles: transient > 0.
        t = trajectory(fig2, [(0, 1), (0, 7)])
        assert t.bandwidth == 2
        assert t.transient > 0

    def test_cycle_fraction(self, fig2):
        t = trajectory(fig2, [(0, 1), (3, 7)])
        assert 0 < t.cycle_fraction_of_states <= 1

    def test_validation(self, fig2):
        with pytest.raises(ValueError):
            trajectory(fig2, [])
        with pytest.raises(ValueError):
            trajectory(fig2, [(0, 1)], cpus=[0, 1])


class TestStartSpaceProfile:
    def test_fig5_profile(self, fig5):
        prof = start_space_profile(fig5, 1, 3)
        # barrier 4/3 and inverted barrier 7/5 both appear
        hist = prof.bandwidth_histogram()
        assert Fraction(4, 3) in hist
        assert Fraction(7, 5) in hist
        assert sum(hist.values()) == 13
        assert prof.worst == Fraction(4, 3)
        assert prof.best == Fraction(7, 5)

    def test_conflict_free_pair_flat_profile(self, fig2):
        prof = start_space_profile(fig2, 1, 7)
        assert prof.best == prof.worst == 2
        assert prof.mean_bandwidth == 2

    def test_mean_between_extremes(self, fig3):
        prof = start_space_profile(fig3, 1, 6)
        assert prof.worst <= prof.mean_bandwidth <= prof.best

    def test_max_transient_finite(self, fig3):
        prof = start_space_profile(fig3, 1, 6)
        assert prof.max_transient >= 0

    def test_same_cpu_profile(self, fig8):
        prof = start_space_profile(fig8, 1, 1, same_cpu=True, priority="fixed")
        # Fig. 8a's 3/2 lock shows up somewhere in the start space.
        assert Fraction(3, 2) in prof.bandwidth_histogram()
