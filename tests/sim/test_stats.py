"""Unit tests for repro.sim.stats."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.sim.stats import ConflictKind, PortStats, SimStats


class TestPortStats:
    def test_grant_counting(self):
        ps = PortStats()
        ps.record_grant()
        ps.record_grant()
        assert ps.grants == 2
        assert ps.total_stall_cycles == 0

    def test_stall_cycles_accumulate(self):
        ps = PortStats()
        ps.record_denial(ConflictKind.BANK)
        ps.record_denial(ConflictKind.BANK)
        ps.record_denial(ConflictKind.SECTION)
        assert ps.stall_cycles[ConflictKind.BANK] == 2
        assert ps.stall_cycles[ConflictKind.SECTION] == 1
        assert ps.total_stall_cycles == 3

    def test_episode_counts_runs_not_cycles(self):
        # A 3-cycle stall is one episode; a grant re-arms the counter.
        ps = PortStats()
        for _ in range(3):
            ps.record_denial(ConflictKind.BANK)
        ps.record_grant()
        ps.record_denial(ConflictKind.BANK)
        assert ps.episodes[ConflictKind.BANK] == 2
        assert ps.stall_cycles[ConflictKind.BANK] == 4

    def test_episode_attributed_to_first_cause(self):
        # Cause changes mid-stall: still one episode, charged to the
        # first denial's kind.
        ps = PortStats()
        ps.record_denial(ConflictKind.SECTION)
        ps.record_denial(ConflictKind.BANK)
        assert ps.total_episodes == 1
        assert ps.episodes[ConflictKind.SECTION] == 1
        assert ps.episodes[ConflictKind.BANK] == 0


class TestSimStats:
    def test_for_ports(self):
        st = SimStats.for_ports(3)
        assert len(st.ports) == 3

    def test_effective_bandwidth(self):
        st = SimStats.for_ports(2)
        st.ports[0].record_grant()
        st.ports[1].record_grant()
        st.ports[0].record_grant()
        st.cycles = 2
        assert st.effective_bandwidth() == Fraction(3, 2)

    def test_effective_bandwidth_requires_cycles(self):
        with pytest.raises(ValueError):
            SimStats.for_ports(1).effective_bandwidth()

    def test_aggregations(self):
        st = SimStats.for_ports(2)
        st.ports[0].record_denial(ConflictKind.BANK)
        st.ports[1].record_denial(ConflictKind.SIMULTANEOUS)
        st.ports[1].record_denial(ConflictKind.SIMULTANEOUS)
        assert st.stall_cycles() == 3
        assert st.stall_cycles(ConflictKind.SIMULTANEOUS) == 2
        assert st.episodes() == 2
        assert st.episodes(ConflictKind.BANK) == 1

    def test_summary_keys(self):
        st = SimStats.for_ports(1)
        st.ports[0].record_grant()
        st.cycles = 4
        s = st.summary()
        assert s["cycles"] == 4
        assert s["grants"] == 1
        assert s["b_eff"] == 0.25
        for key in (
            "bank_conflicts",
            "section_conflicts",
            "simultaneous_conflicts",
            "bank_stall_cycles",
        ):
            assert key in s

    def test_per_port_grants(self):
        st = SimStats.for_ports(2)
        st.ports[1].record_grant()
        assert st.per_port_grants() == [0, 1]


class TestStallRuns:
    def test_max_stall_run_tracks_longest(self):
        ps = PortStats()
        for _ in range(3):
            ps.record_denial(ConflictKind.BANK)
        ps.record_grant()
        ps.record_denial(ConflictKind.BANK)
        assert ps.max_stall_run == 3

    def test_mean_stall_run(self):
        ps = PortStats()
        for _ in range(3):
            ps.record_denial(ConflictKind.BANK)
        ps.record_grant()
        ps.record_denial(ConflictKind.SECTION)
        assert ps.mean_stall_run == pytest.approx(2.0)  # (3+1)/2

    def test_mean_zero_when_clean(self):
        assert PortStats().mean_stall_run == 0.0

    def test_barrier_victim_run_length(self):
        """Fig. 3's victim stalls (d2-d1)/f = 5 clocks per service in
        steady state; the opening clock adds one simultaneous-conflict
        denial on top (max run 6), and the barrier stream never stalls."""
        from repro.core.stream import AccessStream
        from repro.memory.config import MemoryConfig
        from repro.sim.engine import simulate_streams

        cfg = MemoryConfig(banks=13, bank_cycle=6)
        res = simulate_streams(
            cfg,
            [AccessStream(0, 1), AccessStream(0, 6)],
            cpus=[0, 1],
            cycles=200,
        )
        victim = res.stats.ports[1]
        assert victim.max_stall_run == 6  # startup run
        assert 4.5 < victim.mean_stall_run <= 5.1  # steady runs of 5
        assert res.stats.ports[0].max_stall_run == 0
