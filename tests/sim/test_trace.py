"""Unit tests for repro.sim.trace."""

from __future__ import annotations

import pytest

from repro.sim.stats import ConflictKind
from repro.sim.trace import TraceRecorder


class TestRecording:
    def test_events_grouped_by_cycle(self):
        tr = TraceRecorder()
        tr.begin_cycle(0)
        tr.grant(0, 3, "1")
        tr.denial(1, 3, ConflictKind.SIMULTANEOUS, "2", blocker=0)
        tr.begin_cycle(1)
        tr.grant(1, 3, "2")
        assert len(tr) == 2
        assert tr.cycles[0].grants[0].bank == 3
        assert tr.cycles[0].denials[0].blocker == 0
        assert tr.cycles[1].grants[0].port == 1

    def test_window(self):
        tr = TraceRecorder()
        for t in range(5):
            tr.begin_cycle(t)
        got = tr.window(1, 3)
        assert [c.cycle for c in got] == [1, 2]

    def test_bound_stops_recording(self):
        tr = TraceRecorder(max_cycles=2)
        for t in range(5):
            tr.begin_cycle(t)
            tr.grant(0, 0, "1")
        assert len(tr) == 2
        assert tr.recording is False

    def test_events_before_begin_are_dropped(self):
        tr = TraceRecorder()
        tr.grant(0, 0, "1")  # no begin_cycle: silently ignored
        assert len(tr) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceRecorder(max_cycles=0)
