"""Unit tests for repro.skewing.evaluate."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.memory.config import MemoryConfig
from repro.memory.mapping import InterleavedMapping, LinearSkewMapping
from repro.skewing.evaluate import (
    compare_mappings,
    measure_bandwidth,
    stride_sensitivity,
)


@pytest.fixture
def cfg():
    return MemoryConfig(banks=16, bank_cycle=4)


class TestMeasureBandwidth:
    def test_unit_stride_full_rate(self, cfg):
        bw = measure_bandwidth(
            cfg, InterleavedMapping(16), [1], horizon=512, warmup=64
        )
        assert bw == 1

    def test_two_streams(self, cfg):
        bw = measure_bandwidth(
            cfg, InterleavedMapping(16), [1, 1],
            bases=[0, 4], horizon=512, warmup=64,
        )
        assert bw == 2

    def test_self_conflicting_stride(self, cfg):
        bw = measure_bandwidth(
            cfg, InterleavedMapping(16), [16], horizon=512, warmup=64
        )
        assert bw == Fraction(1, 4)

    def test_validation(self, cfg):
        with pytest.raises(ValueError):
            measure_bandwidth(
                cfg, InterleavedMapping(16), [1], horizon=10, warmup=10
            )


class TestComparisons:
    def test_skew_recovers_power_of_two_strides(self, cfg):
        cmp = compare_mappings(cfg, [16], horizon=1024, warmup=128)
        assert cmp.skewed > cmp.plain
        assert cmp.improvement > 0

    def test_skew_neutral_on_unit_stride(self, cfg):
        cmp = compare_mappings(cfg, [1], horizon=512, warmup=64)
        assert cmp.plain == cmp.skewed == 1
        assert cmp.improvement == 0

    def test_stride_sensitivity_rows(self, cfg):
        rows = stride_sensitivity(
            cfg, [1, 8], peers=1, horizon=512, warmup=64
        )
        assert [r.stride for r in rows] == [1, 8]
        # stride 8 against a unit peer: skew must not hurt
        assert rows[1].skewed >= rows[1].plain
