"""Unit tests for repro.skewing.streams."""

from __future__ import annotations

import pytest

from repro.memory.mapping import InterleavedMapping, LinearSkewMapping
from repro.skewing.streams import MappedStream


class TestMappedStream:
    def test_matches_access_stream_under_identity(self):
        m = 12
        ms = MappedStream(InterleavedMapping(m), base=3, stride=7)
        from repro.core.stream import AccessStream

        ref = AccessStream(start_bank=3, stride=7)
        for k in range(30):
            assert ms.bank_at(k, m) == ref.bank_at(k, m)

    def test_skewed_column_walk(self):
        mapping = LinearSkewMapping(4, skew=1)
        ms = MappedStream(mapping, base=0, stride=4)
        assert ms.banks(4, 4) == [0, 1, 2, 3]

    def test_finite_length(self):
        ms = MappedStream(InterleavedMapping(4), base=0, stride=1, length=2)
        assert not ms.is_infinite
        ms.bank_at(1, 4)
        with pytest.raises(IndexError):
            ms.bank_at(2, 4)

    def test_bank_count_mismatch_rejected(self):
        ms = MappedStream(InterleavedMapping(4), base=0, stride=1)
        with pytest.raises(ValueError):
            ms.bank_at(0, 8)
        with pytest.raises(ValueError):
            ms.bound(8)

    def test_bound_validates_and_returns_self(self):
        ms = MappedStream(InterleavedMapping(4), base=0, stride=1)
        assert ms.bound(4) is ms

    def test_with_label(self):
        ms = MappedStream(InterleavedMapping(4), 0, 1).with_label("bg")
        assert ms.label == "bg"

    def test_validation(self):
        mapping = InterleavedMapping(4)
        with pytest.raises(ValueError):
            MappedStream(mapping, base=-1, stride=1)
        with pytest.raises(ValueError):
            MappedStream(mapping, base=0, stride=0)
        with pytest.raises(ValueError):
            MappedStream(mapping, base=0, stride=1, length=-2)

    def test_engine_integration(self):
        """A MappedStream drives a Port through the real engine."""
        from repro.memory.config import MemoryConfig
        from repro.sim.engine import Engine
        from repro.sim.port import Port

        cfg = MemoryConfig(banks=4, bank_cycle=2)
        port = Port(index=0)
        engine = Engine(cfg, [port])
        port.assign(MappedStream(LinearSkewMapping(4, 1), base=0, stride=4))
        engine.run(8)
        # the skewed column walk rotates banks, so full speed:
        assert engine.stats.ports[0].grants == 8
