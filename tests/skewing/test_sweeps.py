"""Unit tests for repro.skewing.sweeps (Budnik-Kuck sweep analysis)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.memory.mapping import (
    InterleavedMapping,
    LinearSkewMapping,
    XorSkewMapping,
)
from repro.skewing.sweeps import (
    min_recurrence_gap,
    sweep_report,
    window_conflict_free,
)


class TestMinRecurrenceGap:
    def test_all_distinct_gives_period(self):
        assert min_recurrence_gap([0, 1, 2, 3]) == 4

    def test_adjacent_repeat(self):
        assert min_recurrence_gap([0, 0, 1, 2]) == 1

    def test_wraparound_counts(self):
        # last element equals first: wrap gap of 1.
        assert min_recurrence_gap([0, 1, 2, 0]) == 1  # also internal gap 3
        assert min_recurrence_gap([0, 1, 2, 3, 0, 9]) == 2  # wrap 9? no: 0 at 0 and 4 -> gap 4; wrap: 9@5 to ... 0@4 -> 0 first@0 +6-4=2

    def test_single_element(self):
        assert min_recurrence_gap([5]) == 1

    def test_arithmetic_progression_matches_theorem1(self):
        # d on m banks: the gap equals the return number r = m/gcd(m,d).
        import math

        for m in (8, 12, 16):
            for d in range(1, m):
                banks = [(k * d) % m for k in range(m)]
                r = m // math.gcd(m, d)
                assert min_recurrence_gap(banks) == r, (m, d)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            min_recurrence_gap([])


class TestWindowConflictFree:
    def test_matches_single_stream_formula(self):
        # equivalent to r >= n_c for arithmetic progressions.
        banks = [(k * 8) % 16 for k in range(2)]
        assert not window_conflict_free(banks, 4)
        banks = [(k * 1) % 16 for k in range(16)]
        assert window_conflict_free(banks, 4)

    def test_validates_nc(self):
        with pytest.raises(ValueError):
            window_conflict_free([0, 1], 0)

    def test_matches_simulation(self):
        """The predicate agrees with a real solo-stream simulation."""
        from repro.memory.config import MemoryConfig
        from repro.sim.engine import Engine
        from repro.sim.port import Port
        from repro.skewing.streams import MappedStream

        mapping = LinearSkewMapping(8, skew=1)
        cfg = MemoryConfig(banks=8, bank_cycle=3)
        for stride in (1, 4, 8, 9):
            banks = [mapping.bank_of(k * stride) for k in range(64)]
            predicted = window_conflict_free(banks, 3)
            port = Port(index=0)
            engine = Engine(cfg, [port])
            port.assign(MappedStream(mapping, base=0, stride=stride))
            engine.run(256)
            full_rate = engine.stats.ports[0].grants == 256
            assert predicted == full_rate, stride


class TestSweepReport:
    def test_plain_interleave_fails_rows(self):
        report = {
            v.sweep: v
            for v in sweep_report(InterleavedMapping(16), (16, 16), 4)
        }
        assert report["column"].conflict_free
        assert not report["row"].conflict_free
        assert report["row"].bandwidth_bound == Fraction(1, 4)
        assert report["diagonal"].conflict_free  # stride 17 ≡ 1

    def test_linear_skew_wins_all_three(self):
        report = sweep_report(LinearSkewMapping(16, 1), (16, 16), 4)
        assert all(v.conflict_free for v in report)

    def test_xor_skew_fails_diagonal(self):
        report = {
            v.sweep: v for v in sweep_report(XorSkewMapping(16), (16, 16), 4)
        }
        assert report["row"].conflict_free
        assert not report["diagonal"].conflict_free

    def test_safe_dimension_fixes_plain_rows(self):
        # J1 = 17 (coprime to 16): rows become unit-like.
        report = {
            v.sweep: v
            for v in sweep_report(InterleavedMapping(16), (17, 16), 4)
        }
        assert report["row"].conflict_free

    def test_validation(self):
        with pytest.raises(ValueError):
            sweep_report(InterleavedMapping(8), (8,), 2)  # not 2-D
        with pytest.raises(ValueError):
            sweep_report(InterleavedMapping(8), (8, 8), 0)
