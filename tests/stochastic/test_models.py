"""Unit tests for repro.stochastic.models."""

from __future__ import annotations

import math
from fractions import Fraction

import pytest

from repro.stochastic.models import (
    binomial_bandwidth,
    hellerman_approximation,
    hellerman_bandwidth,
    simulate_binomial,
)


class TestHellerman:
    def test_m_one(self):
        # one bank: exactly one access before the repeat.
        assert hellerman_bandwidth(1) == 1.0

    def test_m_two_exact(self):
        # B(2) = 1 + 2!/0!/4 = 1 + 1/2 = 3/2.
        assert hellerman_bandwidth(2) == pytest.approx(1.5)

    def test_m_three_exact(self):
        # terms: 1, 2/3*1? compute: k=1: 2/3? no — prod k=1: (3-0)/3 = 1,
        # k=2: *2/3 = 2/3, k=3: *1/3 = 2/9 -> 1 + 2/3 + 2/9 = 17/9.
        assert hellerman_bandwidth(3) == pytest.approx(17 / 9)

    def test_monotone_in_m(self):
        values = [hellerman_bandwidth(m) for m in range(1, 65)]
        assert values == sorted(values)

    def test_approximation_quality(self):
        # sqrt(pi m / 2) is within ~10% for m >= 16.
        for m in (16, 32, 64, 128):
            exact = hellerman_bandwidth(m)
            approx = hellerman_approximation(m)
            assert abs(approx - exact) / exact < 0.12

    def test_sublinear(self):
        # the whole point: random access scales ~sqrt(m), not m.
        assert hellerman_bandwidth(64) < 64 ** 0.75

    def test_validation(self):
        with pytest.raises(ValueError):
            hellerman_bandwidth(0)
        with pytest.raises(ValueError):
            hellerman_approximation(-1)


class TestBinomial:
    def test_single_request(self):
        assert binomial_bandwidth(16, 1) == 1

    def test_known_value(self):
        # m=2, p=2: 2(1 - 1/4) = 3/2.
        assert binomial_bandwidth(2, 2) == Fraction(3, 2)

    def test_bounded_by_m_and_p(self):
        for m in (4, 16):
            for p in (1, 4, 32):
                e = binomial_bandwidth(m, p)
                assert 0 < e <= min(m, p)

    def test_saturates_towards_m(self):
        assert binomial_bandwidth(8, 1000) > Fraction(799, 100)

    def test_monte_carlo_agrees(self):
        for m, p in [(16, 6), (8, 3), (32, 10)]:
            exact = float(binomial_bandwidth(m, p))
            mc = simulate_binomial(m, p, cycles=40000, seed=7)
            assert abs(mc - exact) / exact < 0.02, (m, p)

    def test_validation(self):
        with pytest.raises(ValueError):
            binomial_bandwidth(0, 1)
        with pytest.raises(ValueError):
            binomial_bandwidth(8, 0)
        with pytest.raises(ValueError):
            simulate_binomial(8, 2, cycles=0)
