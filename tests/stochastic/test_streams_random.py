"""Unit tests for repro.stochastic.streams and evaluate."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.memory.config import MemoryConfig
from repro.stochastic.evaluate import (
    random_stream_bandwidth,
    structured_vs_random,
)
from repro.stochastic.streams import RandomStream, splitmix64


class TestSplitmix:
    def test_deterministic(self):
        assert splitmix64(42) == splitmix64(42)

    def test_64_bit_range(self):
        for x in (0, 1, 2**63, 2**64 - 1):
            v = splitmix64(x)
            assert 0 <= v < 2**64

    def test_spreads(self):
        values = {splitmix64(k) % 16 for k in range(256)}
        assert values == set(range(16))


class TestRandomStream:
    def test_deterministic_per_index(self):
        s = RandomStream(seed=3)
        assert s.bank_at(10, 16) == s.bank_at(10, 16)

    def test_different_seeds_differ(self):
        a = RandomStream(seed=1).banks(16, 64)
        b = RandomStream(seed=2).banks(16, 64)
        assert a != b

    def test_roughly_uniform(self):
        banks = RandomStream(seed=5).banks(16, 4096)
        counts = [banks.count(j) for j in range(16)]
        for c in counts:
            assert 160 < c < 360  # 256 expected

    def test_finite_length(self):
        s = RandomStream(seed=1, length=4)
        s.bank_at(3, 8)
        with pytest.raises(IndexError):
            s.bank_at(4, 8)

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomStream(seed=-1)
        with pytest.raises(ValueError):
            RandomStream(seed=1, length=-2)
        with pytest.raises(ValueError):
            RandomStream(seed=1).bank_at(-1, 8)
        with pytest.raises(ValueError):
            RandomStream(seed=1).bank_at(0, 0)

    def test_with_label_and_bound(self):
        s = RandomStream(seed=1).with_label("g")
        assert s.label == "g"
        assert s.bound(16) is s


class TestEvaluate:
    @pytest.fixture
    def cfg(self):
        return MemoryConfig(banks=16, bank_cycle=4)

    def test_one_random_stream_below_full_rate(self, cfg):
        bw = random_stream_bandwidth(cfg, 1, horizon=2048, warmup=256)
        # random addresses revisit busy banks: b_eff < 1 but well above
        # the worst case 1/n_c.
        assert Fraction(1, 4) < bw < 1

    def test_structured_beats_random(self, cfg):
        cmp = structured_vs_random(cfg, 4, horizon=2048, warmup=256)
        assert cmp.structured == 4  # staggered unit strides: perfect
        assert cmp.random < cmp.structured
        assert cmp.structured_advantage > 1.5

    def test_reproducible(self, cfg):
        a = random_stream_bandwidth(cfg, 2, seed=9, horizon=1024, warmup=128)
        b = random_stream_bandwidth(cfg, 2, seed=9, horizon=1024, warmup=128)
        assert a == b

    def test_validation(self, cfg):
        with pytest.raises(ValueError):
            random_stream_bandwidth(cfg, 0)
        with pytest.raises(ValueError):
            random_stream_bandwidth(cfg, 1, horizon=10, warmup=10)
        with pytest.raises(ValueError):
            structured_vs_random(cfg, 0)
