"""Public-API surface tests: imports, __all__ hygiene, version."""

from __future__ import annotations

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.memory",
    "repro.sim",
    "repro.machine",
    "repro.viz",
    "repro.analysis",
    "repro.skewing",
    "repro.stochastic",
    "repro.cli",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize("name", PACKAGES)
def test_all_names_resolve(name):
    mod = importlib.import_module(name)
    for symbol in getattr(mod, "__all__", []):
        assert hasattr(mod, symbol), f"{name}.{symbol} missing"


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_top_level_quicktour():
    """The README quickstart must keep working verbatim."""
    from fractions import Fraction

    from repro import FIG3_CONFIG, classify_pair, predict_single, simulate_pair

    assert predict_single(16, 8, 4).bandwidth == Fraction(1, 2)
    assert classify_pair(12, 3, 1, 7).regime.value == "conflict-free"
    assert classify_pair(26, 4, 1, 3).predicted_bandwidth == Fraction(4, 3)
    pr = simulate_pair(FIG3_CONFIG, 1, 6, b2=0)
    assert pr.bandwidth == Fraction(7, 6)


def test_docstring_examples_in_init():
    """The module docstring's doctest-style lines stay true."""
    from repro import FIG2_CONFIG, classify_pair, simulate_pair
    from repro.core.classify import PairRegime

    assert classify_pair(12, 3, 1, 7).regime is PairRegime.CONFLICT_FREE
    assert simulate_pair(FIG2_CONFIG, 1, 7).bandwidth == 2
