"""docs/API.md must stay in sync with the public surface."""

from __future__ import annotations

import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parents[1]


def test_api_doc_is_current():
    sys.path.insert(0, str(ROOT / "tools"))
    try:
        import gen_api_doc
    finally:
        sys.path.pop(0)
    expected = gen_api_doc.render()
    committed = (ROOT / "docs" / "API.md").read_text()
    assert committed == expected, (
        "docs/API.md is stale — run `python tools/gen_api_doc.py`"
    )


def test_api_doc_mentions_every_package():
    text = (ROOT / "docs" / "API.md").read_text()
    for pkg in (
        "repro.core",
        "repro.sim",
        "repro.runner",
        "repro.machine",
        "repro.analysis",
        "repro.skewing",
        "repro.stochastic",
        "repro.lint",
        "repro.serve",
    ):
        assert f"## `{pkg}`" in text, pkg
