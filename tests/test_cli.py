"""Tests for the repro-mem command-line interface."""

from __future__ import annotations

import re

import pytest

from repro.cli import _parse_range, _parse_stream, build_parser, main


class TestParsers:
    def test_parse_range_forms(self):
        assert _parse_range("3") == [3]
        assert _parse_range("1-4") == [1, 2, 3, 4]
        assert _parse_range("1,5,9") == [1, 5, 9]
        assert _parse_range("1-3,8") == [1, 2, 3, 8]

    def test_parse_range_empty(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_range(",")

    def test_parse_stream(self):
        assert _parse_stream("0:6") == (0, 6)
        assert _parse_stream("12:1") == (12, 1)

    def test_parse_stream_bad(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_stream("7")

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestClassify:
    def test_conflict_free_pair(self, capsys):
        rc = main(["classify", "-m", "12", "-c", "3", "1", "7"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "conflict-free" in out
        assert "predicted b_eff: 2" in out
        assert "relative start: 3" in out

    def test_unique_barrier(self, capsys):
        rc = main(["classify", "-m", "26", "-c", "4", "1", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "unique-barrier" in out
        assert "4/3" in out
        assert "delays stream: 2" in out

    def test_sectioned(self, capsys):
        rc = main(["classify", "-m", "12", "-c", "2", "-s", "2", "1", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "s=2 sections" in out

    def test_invalid_memory_is_clean_error(self, capsys):
        rc = main(["classify", "-m", "12", "-c", "3", "-s", "5", "1", "7"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestSingle:
    def test_self_conflicting(self, capsys):
        rc = main(["single", "-m", "16", "-c", "4", "8"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "r = 2" in out
        assert "1/2" in out
        assert "self-conflicting" in out

    def test_clean(self, capsys):
        rc = main(["single", "-m", "16", "-c", "4", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "conflict free" in out


class TestSimulate:
    def test_steady_output(self, capsys):
        rc = main([
            "simulate", "-m", "13", "-c", "6",
            "--stream", "0:1", "--stream", "0:6",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "7/6" in out

    def test_trace_rendering(self, capsys):
        rc = main([
            "simulate", "-m", "12", "-c", "3",
            "--stream", "0:1", "--stream", "3:7", "--trace", "24",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "bank 0" in out
        assert "steady b_eff = 2" in out

    def test_cpus_and_priority(self, capsys):
        rc = main([
            "simulate", "-m", "12", "-c", "3", "-s", "3",
            "--stream", "0:1", "--stream", "1:1",
            "--cpus", "0,0", "--priority", "cyclic",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "cyclic" in out


class TestTriad:
    def test_small_sweep(self, capsys):
        rc = main(["triad", "--inc", "1,2", "--n", "128"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "INC" in out and "clocks" in out
        assert "streaming d=1" in out

    def test_dedicated(self, capsys):
        rc = main(["triad", "--inc", "1", "--n", "128", "--dedicated"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "other CPU off" in out


class TestAtlas:
    def test_table(self, capsys):
        rc = main(["atlas", "-m", "16", "-c", "4", "--strides", "1-4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Stride atlas" in out
        assert "conflict-free" in out


class TestProfile:
    def test_histogram_output(self, capsys):
        rc = main(["profile", "-m", "13", "-c", "4", "1", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "4/3" in out and "7/5" in out
        assert "start(s)" in out

    def test_same_cpu_flag(self, capsys):
        rc = main([
            "profile", "-m", "12", "-c", "3", "-s", "3",
            "1", "1", "--same-cpu", "--priority", "fixed",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "3/2" in out  # the linked-conflict lock shows up


class TestCensus:
    def test_table(self, capsys):
        rc = main(["census", "-m", "16", "-c", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "conflict-free" in out
        assert "120 pairs" in out


class TestObservability:
    def test_observed_census_with_metrics_report(self, capsys):
        rc = main(["census", "-m", "12", "-c", "3", "--observed",
                   "--metrics"])
        cap = capsys.readouterr()
        assert rc == 0
        assert "Observed regime census" in cap.out
        assert "start-resolved runs" in cap.out
        assert "metrics report" in cap.out
        # live cache-hit and tier-dispatch counters must be nonzero
        hits = re.search(r"runner\.executor\.memo_hits\s+counter\s+(\d+)",
                         cap.out)
        assert hits is not None and int(hits.group(1)) > 0
        dispatch = re.search(
            r"runner\.auto\.dispatch\{tier=\w+\}\s+counter\s+(\d+)",
            cap.out,
        )
        assert dispatch is not None and int(dispatch.group(1)) > 0

    def test_metrics_json_file(self, tmp_path, capsys):
        from repro.obs import load_json

        dest = tmp_path / "metrics.json"
        rc = main(["census", "-m", "8", "-c", "2", "--observed",
                   f"--metrics={dest}"])
        cap = capsys.readouterr()
        assert rc == 0
        assert f"metrics written to {dest}" in cap.err
        reg = load_json(dest.read_text())
        counter = reg.get("runner.executor.submitted")
        assert counter is not None and counter.value > 0

    def test_metrics_prometheus_file(self, tmp_path, capsys):
        dest = tmp_path / "metrics.prom"
        rc = main(["census", "-m", "8", "-c", "2", "--observed",
                   f"--metrics={dest}"])
        capsys.readouterr()
        assert rc == 0
        text = dest.read_text()
        assert "# TYPE runner_executor_submitted counter" in text

    def test_trace_spans_output(self, capsys):
        rc = main(["simulate", "-m", "8", "-c", "2", "--stream", "0:1",
                   "--stream", "1:3", "--trace-spans"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "span trace" in out
        assert "cli.command{command=simulate}" in out

    def test_plain_commands_stay_silent(self, capsys):
        rc = main(["census", "-m", "8", "-c", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "metrics report" not in out
        assert "span trace" not in out


class TestResilienceFlags:
    def test_retry_policy_built_from_flags(self):
        from repro.cli import _retry_policy

        args = build_parser().parse_args([
            "census", "-m", "12", "-c", "3", "--observed",
            "--retries", "3", "--chunk-timeout", "5.0",
            "--strict-failures",
        ])
        policy = _retry_policy(args)
        assert policy is not None
        assert policy.max_retries == 3
        assert policy.chunk_timeout == 5.0
        assert policy.strict is True

    def test_no_flags_means_no_policy(self):
        from repro.cli import _retry_policy

        args = build_parser().parse_args([
            "census", "-m", "12", "-c", "3", "--observed",
        ])
        assert _retry_policy(args) is None

    def test_timeout_alone_enables_default_retries(self):
        from repro.cli import _retry_policy

        args = build_parser().parse_args([
            "profile", "-m", "13", "-c", "4", "1", "3",
            "--chunk-timeout", "60",
        ])
        policy = _retry_policy(args)
        assert policy is not None
        assert policy.max_retries == 2
        assert policy.chunk_timeout == 60.0

    def test_census_runs_with_retries(self, capsys):
        rc = main(["census", "-m", "12", "-c", "3", "--observed",
                   "--retries", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Observed regime census" in out

    def test_simulate_runs_through_executor_with_retries(self, capsys):
        rc = main([
            "simulate", "-m", "13", "-c", "6",
            "--stream", "0:1", "--stream", "0:6", "--retries", "1",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "7/6" in out

    def test_profile_runs_with_strict_failures(self, capsys):
        rc = main(["profile", "-m", "13", "-c", "4", "1", "3",
                   "--strict-failures"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "start(s)" in out

    def test_invalid_policy_is_clean_error(self, capsys):
        rc = main(["census", "-m", "12", "-c", "3", "--observed",
                   "--retries", "-1"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestDuel:
    def test_output(self, capsys):
        rc = main(["duel", "1", "3", "--n", "128"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "CPU 0 (INC=1)" in out
        assert "imbalance" in out


class TestBlockCyclicCli:
    def test_simulate_with_block_cyclic(self, capsys):
        rc = main([
            "simulate", "-m", "12", "-c", "3", "-s", "3",
            "--stream", "0:1", "--stream", "1:1",
            "--cpus", "0,0", "--priority", "block-cyclic:3",
            "--trace", "24", "--show-priority",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "priority  111222" in out  # the Fig. 8b header row
        assert "steady b_eff = 2" in out


class TestInstalledEntryPoint:
    def test_console_script_works(self):
        """The repro-mem entry point must work as an installed command."""
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli"],
            capture_output=True,
            text=True,
        )
        # argparse exits 2 with usage when no command is given
        assert proc.returncode == 2
        assert "repro-mem" in proc.stderr or "usage" in proc.stderr.lower()

    def test_module_invocation_classify(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [
                sys.executable, "-m", "repro.cli",
                "classify", "-m", "12", "-c", "3", "1", "7",
            ],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "conflict-free" in proc.stdout


class TestArbiterCli:
    def test_simulate_with_regulation(self, capsys):
        rc = main([
            "simulate", "-m", "8", "-c", "4",
            "--stream", "0:1", "--stream", "0:1", "--cpus", "0,1",
            "--regulate", "stream:0=1/4",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "regulate: stream:0=1/4" in out
        assert "steady b_eff = 1/2" in out

    def test_simulate_with_wfq(self, capsys):
        rc = main([
            "simulate", "-m", "8", "-c", "4",
            "--stream", "0:1", "--stream", "0:1", "--cpus", "0,1",
            "--arbiter", "wfq:3,1",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "arbiter: wfq:3,1" in out

    def test_profile_accepts_regulation(self, capsys):
        rc = main([
            "profile", "-m", "8", "-c", "4", "1", "1",
            "--regulate", "stream=2/2",
        ])
        assert rc == 0
        assert "start space" in capsys.readouterr().out

    @pytest.mark.parametrize("argv", [
        ["simulate", "-m", "8", "-c", "4", "--stream", "0:1",
         "--regulate", "stream=x"],
        ["simulate", "-m", "8", "-c", "4", "--stream", "0:1",
         "--regulate", "cpu=1/4"],
        ["simulate", "-m", "8", "-c", "4", "--stream", "0:1",
         "--arbiter", "wfq:1,2"],
        ["simulate", "-m", "8", "-c", "4", "--stream", "0:1",
         "--priority", "block-cyclic:x"],
        ["simulate", "-m", "8", "-c", "4", "--stream", "0:1",
         "--priority", "block-cyclic:0"],
        ["profile", "-m", "8", "-c", "4", "1", "1",
         "--regulate", "bank:9=1/4"],
    ])
    def test_malformed_specs_exit_2_without_traceback(self, argv, capsys):
        rc = main(argv)
        err = capsys.readouterr().err
        assert rc == 2
        assert "error: invalid" in err
