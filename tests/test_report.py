"""Smoke tests for the report generator (tools/gen_report.py)."""

from __future__ import annotations

import pathlib
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def report_text():
    sys.path.insert(0, str(ROOT / "tools"))
    try:
        import gen_report
    finally:
        sys.path.pop(0)
    return gen_report.build_report()


class TestReport:
    def test_all_figures_present(self, report_text):
        for fig in range(2, 10):
            assert f"Fig. {fig}" in report_text, fig
        assert "Fig. 10" in report_text

    def test_headline_bandwidths_present(self, report_text):
        assert "steady b_eff = 2 (paper: 2)" in report_text
        assert "steady b_eff = 7/6 (paper eq. 29: 7/6)" in report_text
        assert "steady b_eff = 4/3 (paper eq. 29: 4/3)" in report_text
        assert "steady b_eff = 3/2 (paper: 3/2)" in report_text

    def test_barrier_motif_rendered(self, report_text):
        assert "1<<<<<222222" in report_text

    def test_triad_panels_present(self, report_text):
        assert "(a) other CPU streaming d=1" in report_text
        assert "(b) other CPU off:" in report_text
        assert "simultaneous" in report_text
