"""Unit tests for repro.viz.ascii_trace."""

from __future__ import annotations

import pytest

from repro.core.stream import AccessStream
from repro.sim.engine import simulate_streams
from repro.viz.ascii_trace import render_result, render_trace, trace_grid


def run_traced(config, streams, cpus, cycles=36, **kwargs):
    return simulate_streams(
        config, streams, cpus=cpus, cycles=cycles, trace=True, **kwargs
    )


class TestGrid:
    def test_busy_fill_spans_nc(self, fig2):
        res = run_traced(fig2, [AccessStream(0, 1, label="1")], [0], cycles=10)
        grid = trace_grid(res.trace, fig2, stop=10)
        # bank 0 granted at clock 0, busy 3 clocks.
        assert "".join(grid[0][:4]) == "111."
        assert "".join(grid[1][:5]) == ".111."

    def test_idle_cells_are_dots(self, fig2):
        res = run_traced(fig2, [AccessStream(0, 1, label="1")], [0], cycles=5)
        grid = trace_grid(res.trace, fig2, stop=5)
        assert grid[11] == list(".....")

    def test_delay_markers_overwrite_busy(self, fig3):
        # Fig. 3's signature pattern: 1<<<<<222222 on the conflict bank.
        res = run_traced(
            fig3,
            [AccessStream(0, 1, label="1"), AccessStream(0, 6, label="2")],
            [0, 1],
        )
        grid = trace_grid(res.trace, fig3, stop=25)
        # bank 0 at clock 0 shows the initial simultaneous conflict:
        assert "".join(grid[0][:13]) == "<<<<<<222222."
        # the steady barrier motif appears at bank 6 (stream 1 grants,
        # stream 2 waits out the bank hold, then is serviced):
        assert "".join(grid[6][6:19]) == "1<<<<<222222."

    def test_section_conflict_star(self, fig8):
        res = run_traced(
            fig8,
            [AccessStream(0, 1, label="1"), AccessStream(1, 1, label="2")],
            [0, 0],
            priority="fixed",
        )
        grid = trace_grid(res.trace, fig8, stop=30)
        chars = {c for row in grid for c in row}
        assert "*" in chars  # linked conflict shows section conflicts

    def test_window_validation(self, fig2):
        res = run_traced(fig2, [AccessStream(0, 1)], [0], cycles=5)
        with pytest.raises(ValueError):
            trace_grid(res.trace, fig2, start=3, stop=3)


class TestRender:
    def test_render_trace_layout(self, fig2):
        res = run_traced(
            fig2,
            [AccessStream(0, 1, label="1"), AccessStream(3, 7, label="2")],
            [0, 1],
        )
        text = render_trace(res.trace, fig2, stop=24, title="Fig 2")
        lines = text.splitlines()
        assert lines[0] == "Fig 2"
        assert lines[1].startswith("clock")
        assert len(lines) == 2 + 12  # title + header + one row per bank
        assert lines[2].startswith("bank 0")

    def test_render_with_sections(self, fig7):
        res = run_traced(
            fig7,
            [AccessStream(0, 1, label="1"), AccessStream(3, 1, label="2")],
            [0, 0],
        )
        text = render_trace(res.trace, fig7, stop=20, show_sections=True)
        assert "0 - 0" in text
        assert "1 - 1" in text

    def test_render_result_requires_trace(self, fig2):
        res = simulate_streams(fig2, [AccessStream(0, 1)], cpus=[0], cycles=5)
        with pytest.raises(ValueError):
            render_result(res)

    def test_render_result_passthrough(self, fig2):
        res = run_traced(fig2, [AccessStream(0, 1, label="1")], [0], cycles=8)
        assert "bank 0" in render_result(res, stop=8)


class TestConflictFreeFigure:
    def test_fig2_pattern(self, fig2):
        """The Fig. 2 start (b2 = n_c·d1 = 3) gives the paper's clean
        alternation 111222 on bank 0 with no conflict markers."""
        res = run_traced(
            fig2,
            [AccessStream(0, 1, label="1"), AccessStream(3, 7, label="2")],
            [0, 1],
        )
        grid = trace_grid(res.trace, fig2, stop=36)
        joined = {"".join(row) for row in grid}
        assert not any("<" in r or ">" in r or "*" in r for r in joined)
        assert "".join(grid[0][:6]) == "111222"


class TestPriorityRow:
    def test_off_by_default(self, fig8):
        res = run_traced(
            fig8,
            [AccessStream(0, 1, label="1"), AccessStream(1, 1, label="2")],
            [0, 0],
            priority="cyclic",
        )
        assert "priority" not in render_result(res, stop=20)

    def test_shows_favoured_stream(self, fig8):
        res = run_traced(
            fig8,
            [AccessStream(0, 1, label="1"), AccessStream(1, 1, label="2")],
            [0, 0],
            priority="cyclic",
        )
        from repro.viz.ascii_trace import render_trace

        text = render_trace(res.trace, fig8, stop=20, show_priority=True)
        prio_line = [l for l in text.splitlines() if l.startswith("priority")]
        assert prio_line
        # the cyclic rule alternates favour between the two ports
        assert "12" in prio_line[0]

    def test_fixed_priority_constant_row(self, fig8):
        res = run_traced(
            fig8,
            [AccessStream(0, 1, label="1"), AccessStream(1, 1, label="2")],
            [0, 0],
            priority="fixed",
        )
        from repro.viz.ascii_trace import render_trace

        text = render_trace(res.trace, fig8, stop=20, show_priority=True)
        prio = next(l for l in text.splitlines() if l.startswith("priority"))
        assert set(prio.removeprefix("priority").strip()) == {"1"}
