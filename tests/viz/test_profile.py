"""Unit tests for repro.viz.profile."""

from __future__ import annotations

import pytest

from repro.sim.statespace import start_space_profile
from repro.viz.profile import render_histogram, render_profile


@pytest.fixture(scope="module")
def fig5_profile():
    from repro.memory.config import MemoryConfig

    return start_space_profile(MemoryConfig(banks=13, bank_cycle=4), 1, 3)


class TestRenderProfile:
    def test_one_row_per_offset(self, fig5_profile):
        text = render_profile(fig5_profile)
        rows = [l for l in text.splitlines() if "b2-b1=" in l]
        assert len(rows) == 13

    def test_fractions_shown(self, fig5_profile):
        text = render_profile(fig5_profile)
        assert "4/3" in text
        assert "7/5" in text

    def test_summary_line(self, fig5_profile):
        text = render_profile(fig5_profile)
        assert "best 7/5" in text
        assert "worst 4/3" in text

    def test_title(self, fig5_profile):
        assert render_profile(fig5_profile, title="T").startswith("T\n")

    def test_validation(self, fig5_profile):
        with pytest.raises(ValueError):
            render_profile(fig5_profile, width=0)


class TestRenderHistogram:
    def test_counts(self, fig5_profile):
        text = render_histogram(fig5_profile)
        assert "11 start(s)" in text
        assert "2 start(s)" in text

    def test_validation(self, fig5_profile):
        with pytest.raises(ValueError):
            render_histogram(fig5_profile, width=-1)
