"""Unit tests for repro.viz.series."""

from __future__ import annotations

import pytest

from repro.viz.series import bar_chart, multi_series_table


class TestBarChart:
    def test_scaling_to_width(self):
        text = bar_chart([1, 2], [5.0, 10.0], width=10)
        lines = text.splitlines()
        assert lines[-1].count("#") == 10
        assert lines[-2].count("#") == 5

    def test_title_and_labels(self):
        text = bar_chart(
            ["a"], [1.0], title="T", x_label="inc", y_label="clocks"
        )
        assert text.splitlines()[0] == "T"
        assert "inc" in text and "clocks" in text

    def test_values_echoed(self):
        text = bar_chart([1], [42.0])
        assert "42" in text

    def test_all_zero_series(self):
        text = bar_chart([1, 2], [0.0, 0.0])
        assert "#" not in text

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart([1], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart([], [])
        with pytest.raises(ValueError):
            bar_chart([1], [-1.0])
        with pytest.raises(ValueError):
            bar_chart([1], [1.0], width=0)


class TestMultiSeriesTable:
    def test_alignment_and_content(self):
        text = multi_series_table(
            [1, 2, 16],
            {"cycles": [100, 200, 300], "bank": [1, 2, 3]},
            x_label="INC",
        )
        lines = text.splitlines()
        assert "INC" in lines[0]
        assert "cycles" in lines[0] and "bank" in lines[0]
        assert len(lines) == 2 + 3  # header + rule + rows

    def test_floats_formatted(self):
        text = multi_series_table([1], {"b_eff": [1.5]})
        assert "1.500" in text

    def test_ints_stay_int(self):
        text = multi_series_table([1], {"n": [42]})
        assert "42" in text and "42.0" not in text

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            multi_series_table([1, 2], {"x": [1.0]})
