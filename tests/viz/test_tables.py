"""Unit tests for repro.viz.tables."""

from __future__ import annotations

import pytest

from repro.viz.tables import format_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["a", "bb"], [(1, 2), (30, 40)])
        lines = text.splitlines()
        assert len(lines) == 4  # header + rule + 2 rows
        assert "a" in lines[0] and "bb" in lines[0]
        assert set(lines[1]) == {"-"}

    def test_title(self):
        text = format_table(["x"], [(1,)], title="Table 1")
        assert text.splitlines()[0] == "Table 1"

    def test_column_width_follows_content(self):
        text = format_table(["x"], [("longvalue",)])
        header, rule, row = text.splitlines()
        assert len(header) == len("longvalue")
        assert row == "longvalue"

    def test_right_justified(self):
        text = format_table(["value"], [(1,)])
        row = text.splitlines()[2]
        assert row.endswith("1") and row.startswith(" ")

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            format_table([], [])
        with pytest.raises(ValueError):
            format_table(["a"], [(1, 2)])

    def test_fractions_survive(self):
        from fractions import Fraction

        text = format_table(["b_eff"], [(Fraction(7, 6),)])
        assert "7/6" in text
