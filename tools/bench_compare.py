#!/usr/bin/env python
"""Backend and sweep throughput comparison, as JSON.

Three modes, all printing a JSON report and exiting non-zero when a
speedup floor is missed:

**Backend throughput** (default) — runs the three
``benchmarks/bench_engine_throughput.py`` workload shapes (one port,
two CPUs, six ports on a sectioned memory) on the reference and fast
backends and reports simulated clocks per second::

    PYTHONPATH=src python tools/bench_compare.py [--clocks N] [--repeat K]

**Sweep wall-clock** (``--sweeps``) — times the tier-sensitive sweep
workloads (the regime census, the lockstep census population and the
start-space profiles of the paper's figure pairs) through the tiered
executor, best-of ``--repeat``, and writes the wall-clock JSON
(``--json PATH``) whose schema matches the benchmark timing artifacts
(``BENCH_*.json``).  ``--backend NAME`` pins ``$REPRO_BENCH_BACKEND``
for the backend-parametrized benches (the census population);
``--workers 1,2,4`` also times the parallel census on that worker
ladder, ``--scheduler pool|shard`` picking its placement policy::

    PYTHONPATH=src python tools/bench_compare.py --sweeps --backend batch \
        --json BENCH_after.json

**Artifact comparison** (``--compare BEFORE AFTER``) — reads two such
wall-clock artifacts (same-machine captures) and reports per-benchmark
speedups; ``--keys SUBSTR [SUBSTR ...]`` restricts the comparison to
matching benchmark keys.  CI runs this on the committed
``BENCH_before.json`` / ``BENCH_after.json`` pair with
``--keys census_population --min-speedup 5`` to pin the lockstep batch
core's reason to exist.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.memory.config import MemoryConfig  # noqa: E402
from repro.runner import SimJob, get_backend  # noqa: E402

WORKLOADS = [
    ("1port", 1, False),
    ("2ports", 2, False),
    ("6ports-sectioned", 6, True),
]


def _job(n_ports: int, sectioned: bool, clocks: int) -> SimJob:
    cfg = MemoryConfig(
        banks=16, bank_cycle=4, sections=4 if sectioned else None
    )
    return SimJob.from_specs(
        cfg,
        [((3 * i) % 16, 1 + (i % 3)) for i in range(n_ports)],
        cpus=[i % 2 for i in range(n_ports)],
        priority="cyclic",
        steady=False,
        cycles=clocks,
    )


def _clocks_per_second(backend_name: str, job: SimJob, repeat: int) -> float:
    backend = get_backend(backend_name)
    backend.run(job)  # warm-up
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        out = backend.run(job)
        best = min(best, time.perf_counter() - start)
        assert out.cycles == job.cycles
    return job.cycles / best


#: The tier-sensitive sweep benchmarks whose wall-clock the committed
#: ``BENCH_*.json`` artifacts track.
SWEEP_BENCHES = (
    "benchmarks/bench_regime_census.py",
    "benchmarks/bench_start_space.py",
)


def _run_sweeps(
    repeat: int,
    backend: str | None = None,
    workers: str | None = None,
    scheduler: str | None = None,
) -> dict:
    """Best-of-``repeat`` wall-clock of the sweep benchmarks.

    Each repetition is a fresh pytest process so in-process caches
    (executor memo, classifier lru_caches) start cold — the same
    methodology as the committed ``BENCH_*.json`` captures.  A
    ``backend`` pins ``$REPRO_BENCH_BACKEND`` for the
    backend-parametrized benches.  A ``workers`` ladder (CSV, e.g.
    ``"1,2,4"``) adds the parallel-census bench on that ladder, and
    ``scheduler`` picks its placement policy (``pool`` / ``shard``).
    """
    import os
    import subprocess
    import tempfile

    root = pathlib.Path(__file__).resolve().parents[1]
    benches = list(SWEEP_BENCHES)
    if workers is not None:
        benches.append("benchmarks/bench_parallel_census.py")
    best: dict[str, float] = {}
    for _ in range(repeat):
        with tempfile.TemporaryDirectory() as tmp:
            timings = pathlib.Path(tmp) / "timings.json"
            env = dict(os.environ)
            env["REPRO_BENCH_TIMINGS"] = str(timings)
            env["PYTHONPATH"] = str(root / "src")
            if backend is not None:
                env["REPRO_BENCH_BACKEND"] = backend
            if workers is not None:
                env["REPRO_BENCH_WORKERS"] = workers
            if scheduler is not None:
                env["REPRO_BENCH_SCHEDULER"] = scheduler
            subprocess.run(
                [sys.executable, "-m", "pytest", *benches, "-q"],
                check=True,
                cwd=root,
                env=env,
                stdout=subprocess.DEVNULL,
            )
            for key, elapsed in json.loads(timings.read_text())[
                "benchmarks"
            ].items():
                best[key] = min(best.get(key, elapsed), elapsed)
    report = {
        "schema": 1,
        "unit": "seconds",
        "benchmarks": {k: round(v, 6) for k, v in sorted(best.items())},
    }
    if workers is not None:
        report["workers"] = workers
    if scheduler is not None:
        report["scheduler"] = scheduler
    return report


def _compare_artifacts(
    before_path: str,
    after_path: str,
    min_speedup: float,
    keys: list[str] | None = None,
) -> dict:
    """Per-benchmark speedups between two wall-clock artifacts,
    optionally restricted to benchmark keys containing a ``keys``
    substring."""
    before = json.loads(pathlib.Path(before_path).read_text())["benchmarks"]
    after = json.loads(pathlib.Path(after_path).read_text())["benchmarks"]
    shared = sorted(set(before) & set(after))
    if keys:
        shared = [k for k in shared if any(sub in k for sub in keys)]
    if not shared:
        raise SystemExit(
            f"no shared benchmarks between {before_path} and {after_path}"
            + (f" matching {keys}" if keys else "")
        )
    rows = {}
    ok = True
    for key in shared:
        speedup = before[key] / after[key]
        ok = ok and speedup >= min_speedup
        rows[key] = {
            "before_s": before[key],
            "after_s": after[key],
            "speedup": round(speedup, 2),
        }
    return {
        "before": before_path,
        "after": after_path,
        "benchmarks": rows,
        "min_speedup_required": min_speedup,
        "pass": ok,
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--clocks", type=int, default=20_000,
                    help="simulated clocks per run (default 20000)")
    ap.add_argument("--repeat", type=int, default=5,
                    help="timing repetitions, best-of (default 5)")
    ap.add_argument("--min-speedup", type=float, default=1.0,
                    help="fail if any workload's speedup is below this")
    ap.add_argument("--sweeps", action="store_true",
                    help="time the census/start-space sweep benchmarks "
                         "instead of backend throughput")
    ap.add_argument("--compare", nargs=2, metavar=("BEFORE", "AFTER"),
                    help="compare two wall-clock JSON artifacts")
    ap.add_argument("--keys", nargs="+", metavar="SUBSTR",
                    help="restrict --compare to benchmark keys "
                         "containing any of these substrings")
    ap.add_argument("--backend",
                    help="with --sweeps, pin $REPRO_BENCH_BACKEND for "
                         "the backend-parametrized benches")
    ap.add_argument("--workers", metavar="CSV",
                    help="with --sweeps, also time the parallel census "
                         "on this worker ladder (e.g. 1,2,4)")
    ap.add_argument("--scheduler", choices=["pool", "shard"],
                    help="with --sweeps --workers, the scheduler the "
                         "parallel census runs on (default pool)")
    ap.add_argument("--json", dest="json_path",
                    help="also write the report to this path")
    args = ap.parse_args(argv)

    if args.compare:
        report = _compare_artifacts(
            *args.compare, args.min_speedup, args.keys
        )
        ok = report["pass"]
    elif args.sweeps:
        report = _run_sweeps(
            args.repeat, args.backend, args.workers, args.scheduler
        )
        ok = True  # absolute timings carry no pass/fail by themselves
    else:
        report = {
            "clocks": args.clocks,
            "repeat": args.repeat,
            "workloads": {},
        }
        ok = True
        for name, n_ports, sectioned in WORKLOADS:
            job = _job(n_ports, sectioned, args.clocks)
            ref = _clocks_per_second("reference", job, args.repeat)
            fast = _clocks_per_second("fast", job, args.repeat)
            speedup = fast / ref
            ok = ok and speedup >= args.min_speedup
            report["workloads"][name] = {
                "reference_clk_per_s": round(ref),
                "fast_clk_per_s": round(fast),
                "speedup": round(speedup, 2),
            }
        report["min_speedup_required"] = args.min_speedup
        report["pass"] = ok

    text = json.dumps(report, indent=2)
    print(text)
    if args.json_path:
        pathlib.Path(args.json_path).write_text(text + "\n")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
