#!/usr/bin/env python
"""Compare reference vs fast backend throughput, as JSON.

Runs the three ``benchmarks/bench_engine_throughput.py`` workload shapes
(one port, two CPUs, six ports on a sectioned memory) on both backends
and prints simulated clocks per second plus the speedup factor::

    PYTHONPATH=src python tools/bench_compare.py [--clocks N] [--repeat K]

Exit status is non-zero if any workload's fast-backend speedup falls
below the floor (default 1.0, i.e. "not slower"); CI calls this with
``--min-speedup 3`` to enforce the fast path's reason to exist.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.memory.config import MemoryConfig  # noqa: E402
from repro.runner import SimJob, get_backend  # noqa: E402

WORKLOADS = [
    ("1port", 1, False),
    ("2ports", 2, False),
    ("6ports-sectioned", 6, True),
]


def _job(n_ports: int, sectioned: bool, clocks: int) -> SimJob:
    cfg = MemoryConfig(
        banks=16, bank_cycle=4, sections=4 if sectioned else None
    )
    return SimJob.from_specs(
        cfg,
        [((3 * i) % 16, 1 + (i % 3)) for i in range(n_ports)],
        cpus=[i % 2 for i in range(n_ports)],
        priority="cyclic",
        steady=False,
        cycles=clocks,
    )


def _clocks_per_second(backend_name: str, job: SimJob, repeat: int) -> float:
    backend = get_backend(backend_name)
    backend.run(job)  # warm-up
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        out = backend.run(job)
        best = min(best, time.perf_counter() - start)
        assert out.cycles == job.cycles
    return job.cycles / best


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--clocks", type=int, default=20_000,
                    help="simulated clocks per run (default 20000)")
    ap.add_argument("--repeat", type=int, default=5,
                    help="timing repetitions, best-of (default 5)")
    ap.add_argument("--min-speedup", type=float, default=1.0,
                    help="fail if any workload's speedup is below this")
    args = ap.parse_args(argv)

    report = {
        "clocks": args.clocks,
        "repeat": args.repeat,
        "workloads": {},
    }
    ok = True
    for name, n_ports, sectioned in WORKLOADS:
        job = _job(n_ports, sectioned, args.clocks)
        ref = _clocks_per_second("reference", job, args.repeat)
        fast = _clocks_per_second("fast", job, args.repeat)
        speedup = fast / ref
        ok = ok and speedup >= args.min_speedup
        report["workloads"][name] = {
            "reference_clk_per_s": round(ref),
            "fast_clk_per_s": round(fast),
            "speedup": round(speedup, 2),
        }
    report["min_speedup_required"] = args.min_speedup
    report["pass"] = ok
    print(json.dumps(report, indent=2))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
