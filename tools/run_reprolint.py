#!/usr/bin/env python
"""Standalone reprolint runner (CI entry point).

Equivalent to ``repro-mem lint``; exists so CI and pre-commit hooks can
lint without installing the package — it puts ``src/`` on the path
itself.  Exit codes: 0 clean, 1 findings, 2 usage error.

Examples::

    python tools/run_reprolint.py src/
    python tools/run_reprolint.py src/ --format json --output report.json
    python tools/run_reprolint.py --list-rules
"""

from __future__ import annotations

import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parents[1]

# Always prefer this repository's own package over anything an ambient
# (possibly relative) PYTHONPATH resolves to from a foreign cwd.
sys.path.insert(0, str(ROOT / "src"))

from repro.lint.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
