#!/usr/bin/env python
"""CI smoke for the bandwidth-oracle service (docs/SERVICE.md).

Boots ``repro-mem serve`` as a real subprocess on a free port, then
checks the contract end to end:

* ``POST /v1/beff`` on a Theorem-1 point returns the **exact**
  Fraction-derived value (``m=8, n_c=4, d=4`` -> ``1/2``) from the
  analytic lookup tier;
* ``POST /v1/beff`` on an undecided pair simulates and is exact too;
* malformed bodies come back ``400`` (never ``500``);
* ``GET /metrics`` exposes a populated per-endpoint latency histogram
  under the documented ``serve.*`` names;
* ``SIGINT`` drains gracefully (exit code 0, "draining" announced).

A JSON artifact (``--json PATH``, default ``serve-smoke.json``)
captures the responses and the parsed ``serve.*`` metric samples for
CI upload.
"""

from __future__ import annotations

import argparse
import json
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]

#: Theorem 1, self-conflicting: r = m/gcd(m,d) = 2 < n_c -> b_eff = 2/4.
ANALYTIC_POINT = {"banks": 8, "bank_cycle": 4, "streams": [[0, 4]]}
ANALYTIC_EXPECTED = "1/2"
#: Undecided by every closed form: exercises the simulation drain.
SIMULATED_POINT = {"banks": 8, "bank_cycle": 4, "streams": [[0, 4], [0, 4]]}
SIMULATED_EXPECTED = "1/2"


def _post(base: str, path: str, obj: object) -> tuple[int, dict]:
    req = urllib.request.Request(
        base + path,
        data=json.dumps(obj).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _get(base: str, path: str) -> tuple[int, bytes]:
    with urllib.request.urlopen(base + path, timeout=30) as resp:
        return resp.status, resp.read()


def _serve_samples(prom_text: str) -> dict[str, float]:
    """Every ``serve_*`` sample in the exposition, name{labels} -> value."""
    samples: dict[str, float] = {}
    for line in prom_text.splitlines():
        if line.startswith("serve_"):
            name, _, value = line.rpartition(" ")
            samples[name] = float(value)
    return samples


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default="serve-smoke.json",
                        help="metrics/response artifact path")
    parser.add_argument("--timeout", type=float, default=60.0,
                        help="seconds to wait for server readiness")
    args = parser.parse_args(argv)

    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--host", "127.0.0.1", "--port", "0"],
        cwd=ROOT,
        env={**__import__("os").environ, "PYTHONPATH": str(ROOT / "src")},
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    artifact: dict = {}
    try:
        assert proc.stdout is not None
        deadline = time.monotonic() + args.timeout
        port = None
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if not line:
                raise SystemExit(
                    f"server exited early: {proc.wait()}"
                )
            match = re.search(r"serving on http://[^:]+:(\d+)", line)
            if match:
                port = int(match.group(1))
                break
        if port is None:
            raise SystemExit("server never announced readiness")
        base = f"http://127.0.0.1:{port}"

        status, beff = _post(base, "/v1/beff", ANALYTIC_POINT)
        assert status == 200, (status, beff)
        assert beff["bandwidth"] == ANALYTIC_EXPECTED, beff
        assert beff["tier"] == "analytic", beff
        artifact["beff_analytic"] = beff

        status, sim = _post(base, "/v1/beff", SIMULATED_POINT)
        assert status == 200, (status, sim)
        assert sim["bandwidth"] == SIMULATED_EXPECTED, sim
        assert sim["tier"] == "simulated", sim
        artifact["beff_simulated"] = sim

        status, bad = _post(base, "/v1/sweep", {"jobs": "nope"})
        assert status == 400, (status, bad)
        artifact["malformed_status"] = status

        status, health = _get(base, "/healthz")
        assert status == 200
        artifact["healthz"] = json.loads(health)

        status, prom = _get(base, "/metrics")
        assert status == 200
        samples = _serve_samples(prom.decode())
        artifact["serve_metrics"] = samples
        latency_count = samples.get(
            'serve_http_latency_us_count{endpoint="/v1/beff"}', 0.0
        )
        assert latency_count >= 2, (
            f"latency histogram not populated: {latency_count}"
        )
        requests_ok = samples.get(
            'serve_http_requests{endpoint="/v1/beff",status="200"}', 0.0
        )
        assert requests_ok >= 2, f"request counter not populated: {requests_ok}"

        proc.send_signal(signal.SIGINT)
        out, _ = proc.communicate(timeout=args.timeout)
        assert proc.returncode == 0, (proc.returncode, out)
        assert "draining" in out, out
        artifact["shutdown"] = {"returncode": proc.returncode}
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
        Path(args.json).write_text(json.dumps(artifact, indent=2) + "\n")

    print(f"serve smoke OK; artifact written to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
